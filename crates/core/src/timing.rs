//! The SOFIA timing model: cipher scheduling, fetch-slot accounting and
//! the store gate.
//!
//! # Derivation (matching the paper's Figs. 5/6)
//!
//! One shared RECTANGLE instance, unrolled 13× (2-cycle latency), issues
//! one operation per cycle, alternating CTR (decrypt pads) and CBC-MAC
//! absorbs (§III). Word `p` (0-based) of a block is fetched in cycle
//! `p + 1`; with the 7-stage pipeline it enters the Memory Access stage in
//! cycle `p + 5` (IF at `p + 1`, then ID, OF, EX, MA). The final CBC
//! absorb issues as the last word streams in and completes one cycle
//! later, so verification is known at
//! `verify_done = block_words + verify_latency` (default latency 1 =
//! cipher latency − 1, the compare being combinational).
//!
//! * Default 8-word block: `verify_done = 9`; word 2 (inst1) reaches MA in
//!   cycle 7 and word 3 (inst2) in cycle 8 — **before** verification, so
//!   stores are banned there (Fig. 6); word 4 (inst3) reaches MA in cycle
//!   9 and needs no stall.
//! * `exec4` 6-word block: `verify_done = 7`; the earliest instruction
//!   (word 2) reaches MA in cycle 7 — verification always wins, so no
//!   restriction is needed (Fig. 5).
//!
//! The same numbers drive the store gate at run time: a store at word `p`
//! stalls `max(0, verify_done − (p + 5))` cycles.

use sofia_transform::{BlockFormat, BlockKind};

/// How many 32-bit words one CTR operation can cover (paper §III: "a
/// single operation can process two 32-bit words").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CipherSchedule {
    /// The paper's datapath: one 64-bit CTR op covers two words.
    #[default]
    Paper,
    /// Conservative reading of Algorithm 1: one op per 32-bit word.
    PerWord,
}

/// Timing parameters of the SOFIA fetch path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SofiaTiming {
    /// CTR-op granularity.
    pub schedule: CipherSchedule,
    /// Cipher latency in cycles (2 = unrolled 13×, the paper's choice).
    pub cipher_latency: u32,
    /// Cycles between cipher-op issues: 1 for the paper's pipelined
    /// 2-stage design; `cycles_per_op` for iterated designs (the
    /// unrolling ablation uses this).
    pub cipher_issue_interval: u32,
    /// Cycles between the last fetched word and a known verdict.
    pub verify_latency: u32,
    /// Extra cycles on a control-flow redirect before the decrypt
    /// refill can begin: the `{ω ‖ prevPC ‖ PC}` counter must be formed
    /// from the freshly-updated edge registers and steered into the CTR
    /// datapath across the registered cache/decrypt boundary. Sequential
    /// streaming hides this (the fall-through counter is precomputed);
    /// only redirects pay it.
    pub redirect_setup: u32,
    /// Cycles to reboot after a reset (paper: "reboot reliably fast").
    pub reboot_cycles: u64,
}

impl Default for SofiaTiming {
    fn default() -> Self {
        SofiaTiming {
            schedule: CipherSchedule::Paper,
            cipher_latency: sofia_crypto::CYCLES_UNROLLED_13,
            cipher_issue_interval: 1,
            verify_latency: sofia_crypto::CYCLES_UNROLLED_13 - 1,
            redirect_setup: 1,
            reboot_cycles: 200,
        }
    }
}

/// Per-block cycle accounting produced by [`SofiaTiming::block_cycles`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockTiming {
    /// Pipeline issue slots consumed (every fetched word, MAC words
    /// included — they travel as `nop`s, paper §II-B).
    pub issue_cycles: u32,
    /// Extra stall when cipher ops outnumber fetch slots.
    pub cipher_stall: u32,
    /// Decrypt-pipeline refill after a control-flow redirect.
    pub redirect_fill: u32,
    /// CTR operations issued.
    pub ctr_ops: u32,
    /// CBC-MAC operations issued.
    pub cbc_ops: u32,
}

impl BlockTiming {
    /// Total cycles charged for the block's fetch/decrypt/verify work
    /// (instruction-level hazards are charged separately, as on the
    /// vanilla machine).
    pub fn total(&self) -> u32 {
        self.issue_cycles + self.cipher_stall + self.redirect_fill
    }
}

impl SofiaTiming {
    /// Accounting for one block fetched along `kind`/`words_fetched`,
    /// entered by redirect (`redirected`) or sequential fall-through.
    pub fn block_cycles(
        &self,
        format: &BlockFormat,
        kind: BlockKind,
        words_fetched: u32,
        redirected: bool,
    ) -> BlockTiming {
        let ctr_ops = match self.schedule {
            CipherSchedule::Paper => words_fetched.div_ceil(2),
            CipherSchedule::PerWord => words_fetched,
        };
        let cbc_ops = (format.mac_padded_words(kind) as u32) / 2;
        let cipher_cycles = (ctr_ops + cbc_ops) * self.cipher_issue_interval.max(1);
        BlockTiming {
            issue_cycles: words_fetched,
            cipher_stall: cipher_cycles.saturating_sub(words_fetched),
            redirect_fill: if redirected {
                self.redirect_setup + self.cipher_latency
            } else {
                0
            },
            ctr_ops,
            cbc_ops,
        }
    }

    /// Cycle (1-based, from block fetch start) when the verification
    /// verdict is available.
    pub fn verify_done(&self, format: &BlockFormat) -> u32 {
        format.block_words() as u32 + self.verify_latency
    }

    /// Stall cycles the store gate inserts for a store at block word
    /// position `word_pos` — the quantitative content of Figs. 5/6.
    ///
    /// # Examples
    ///
    /// ```
    /// use sofia_core::timing::SofiaTiming;
    /// use sofia_transform::BlockFormat;
    ///
    /// let t = SofiaTiming::default();
    /// // Default 8-word block: inst1 (word 2) would need 2 stall cycles —
    /// // which is why the format bans stores there; inst3 (word 4) is free.
    /// assert_eq!(t.store_gate_stall(&BlockFormat::default(), 2), 2);
    /// assert_eq!(t.store_gate_stall(&BlockFormat::default(), 4), 0);
    /// // exec4: verification always beats the earliest possible store.
    /// assert_eq!(t.store_gate_stall(&BlockFormat::exec4(), 2), 0);
    /// ```
    pub fn store_gate_stall(&self, format: &BlockFormat, word_pos: usize) -> u32 {
        let ma_cycle = word_pos as u32 + 5;
        self.verify_done(format).saturating_sub(ma_cycle)
    }
}

/// One row of the Fig. 5/6 reproduction: for each instruction slot of a
/// block format, whether a store is allowed there and how many cycles the
/// gate would stall it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreGateRow {
    /// Instruction slot index (0-based).
    pub slot: usize,
    /// Word position within the block.
    pub word_pos: usize,
    /// Whether the format permits a store here.
    pub allowed: bool,
    /// Gate stall if a store executed here.
    pub stall: u32,
}

/// Tabulates the store gate across all instruction slots of a format —
/// the data behind Figs. 5 and 6.
pub fn store_gate_table(format: &BlockFormat, timing: &SofiaTiming) -> Vec<StoreGateRow> {
    let kind = BlockKind::Exec;
    (0..format.insts(kind))
        .map(|slot| {
            let word_pos = format.word_pos(kind, slot);
            StoreGateRow {
                slot,
                word_pos,
                allowed: format.store_allowed(kind, slot),
                stall: timing.store_gate_stall(format, word_pos),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_restricted_slots_are_exactly_the_stalling_ones() {
        // In the default format, the slots where a store would stall are
        // exactly the slots the format bans: the restriction makes the
        // gate free (Fig. 6's design argument).
        let format = BlockFormat::default();
        let t = SofiaTiming::default();
        for row in store_gate_table(&format, &t) {
            assert_eq!(
                row.allowed,
                row.stall == 0,
                "slot {} (word {}): allowed={} stall={}",
                row.slot,
                row.word_pos,
                row.allowed,
                row.stall
            );
        }
    }

    #[test]
    fn fig5_exec4_needs_no_restriction() {
        // The 6-word block of Fig. 5 fits before MA: no slot ever stalls.
        let format = BlockFormat::exec4();
        let t = SofiaTiming::default();
        for row in store_gate_table(&format, &t) {
            assert!(row.allowed);
            assert_eq!(row.stall, 0);
        }
    }

    #[test]
    fn paper_schedule_never_stalls_default_blocks() {
        // 8 words: 4 CTR + 3 CBC = 7 ops ≤ 8 slots → cipher keeps up.
        let t = SofiaTiming::default();
        let bt = t.block_cycles(&BlockFormat::default(), BlockKind::Exec, 8, true);
        assert_eq!(bt.cipher_stall, 0);
        assert_eq!(bt.ctr_ops, 4);
        assert_eq!(bt.cbc_ops, 3);
        // 8 issue slots + 1 counter-formation cycle + 2 cipher latency.
        assert_eq!(bt.total(), 8 + 1 + 2);
    }

    #[test]
    fn redirect_setup_is_configurable_and_skippable() {
        let t = SofiaTiming {
            redirect_setup: 0,
            ..Default::default()
        };
        let bt = t.block_cycles(&BlockFormat::default(), BlockKind::Exec, 8, true);
        assert_eq!(bt.redirect_fill, t.cipher_latency);
    }

    #[test]
    fn per_word_schedule_backpressures() {
        // 8 CTR + 3 CBC = 11 ops > 8 slots → 3 stall cycles.
        let t = SofiaTiming {
            schedule: CipherSchedule::PerWord,
            ..Default::default()
        };
        let bt = t.block_cycles(&BlockFormat::default(), BlockKind::Exec, 8, false);
        assert_eq!(bt.cipher_stall, 3);
        assert_eq!(bt.total(), 11);
    }

    #[test]
    fn mux_path_fetches_fewer_words() {
        let t = SofiaTiming::default();
        let bt = t.block_cycles(&BlockFormat::default(), BlockKind::Mux, 7, true);
        assert_eq!(bt.issue_cycles, 7);
        assert_eq!(bt.ctr_ops, 4); // ceil(7/2)
    }

    #[test]
    fn sequential_blocks_skip_the_refill() {
        let t = SofiaTiming::default();
        let bt = t.block_cycles(&BlockFormat::default(), BlockKind::Exec, 8, false);
        assert_eq!(bt.redirect_fill, 0);
    }
}
