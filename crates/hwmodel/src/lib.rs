//! # sofia-hwmodel — the FPGA area and timing cost model
//!
//! Reproduces Table I of the paper (DESIGN.md, substitution S2). The real
//! artifact is a Xilinx Virtex-6 synthesis run we cannot perform; instead
//! this is a component-level model whose two free parameters — slices per
//! unrolled RECTANGLE round and fixed SOFIA overhead — are calibrated so
//! the paper's design point (13× unrolling) lands on the published pair
//! (7,551 slices, 50.1 MHz), after which the model is used *predictively*
//! for the unrolling ablation.
//!
//! ## Structure of the model
//!
//! * vanilla LEON3 (minimal config): 5,889 slices, 10.834 ns critical
//!   path (92.3 MHz) — the paper's baseline row;
//! * SOFIA adds a fixed part (key storage for 3×80-bit keys, the MAC
//!   comparator, counter formation, block-sequencer/next-PC logic, reset
//!   line) and `u` unrolled cipher rounds placed **in the critical
//!   path** ("the block cipher increases the critical path", §III);
//! * the clock is the slower of the LEON3 path and the cipher path
//!   `t_fix + u · t_round`;
//! * a `u`-round-per-cycle cipher needs `⌈25/u⌉ + 1` cycles per
//!   operation; the paper's 13× unrolling gives the published 2 cycles
//!   and is pipelinable at one operation per cycle.
//!
//! # Examples
//!
//! ```
//! use sofia_hwmodel::{sofia, vanilla, PAPER_UNROLL};
//!
//! let v = vanilla();
//! let s = sofia(PAPER_UNROLL);
//! // Table I: +28.2 % area, clock 84.6 % slower (period 1.846×).
//! assert!((s.area_overhead_vs(&v) - 28.2).abs() < 1.0);
//! assert!((s.clock_slowdown_vs(&v) - 84.6).abs() < 2.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sofia_crypto::ROUNDS;

/// The paper's unrolling factor (rounds per cycle).
pub const PAPER_UNROLL: u32 = 13;

/// Vanilla LEON3 slices (Table I).
pub const LEON3_SLICES: f64 = 5889.0;

/// Vanilla LEON3 critical path in ns (92.3 MHz, Table I).
pub const LEON3_PERIOD_NS: f64 = 1000.0 / 92.3;

/// SOFIA slices at the paper's design point (Table I).
pub const SOFIA_SLICES: f64 = 7551.0;

/// SOFIA critical path in ns at the paper's design point (50.1 MHz).
pub const SOFIA_PERIOD_NS: f64 = 1000.0 / 50.1;

/// Fixed SOFIA overhead in slices: 3×80-bit key storage (~30), 64-bit
/// MAC comparator and state (~50), counter formation and `prevPC`
/// tracking (~60), block sequencer / next-PC logic (~200), cipher state
/// registers and control (~110). The split is an engineering estimate;
/// its *total* is what calibration constrains.
pub const FIXED_OVERHEAD_SLICES: f64 = 450.0;

/// Slices per unrolled RECTANGLE round, from calibration:
/// `(7551 − 5889 − 450) / 13`.
pub const ROUND_SLICES: f64 = (SOFIA_SLICES - LEON3_SLICES - FIXED_OVERHEAD_SLICES) / 13.0;

/// Fixed delay around the cipher path (registers, muxing, routing), ns.
pub const CIPHER_FIXED_NS: f64 = 2.0;

/// Combinational delay of one RECTANGLE round, from calibration:
/// `(19.96 − 2.0) / 13`.
pub const ROUND_DELAY_NS: f64 = (SOFIA_PERIOD_NS - CIPHER_FIXED_NS) / 13.0;

/// An area/clock estimate for one hardware configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HwEstimate {
    /// Configuration label.
    pub name: &'static str,
    /// Unrolling factor (0 for the vanilla core).
    pub unroll: u32,
    /// Occupied slices.
    pub slices: f64,
    /// Critical path in ns.
    pub period_ns: f64,
    /// Cipher cycles per 64-bit operation (0 for vanilla).
    pub cycles_per_op: u32,
    /// Whether the cipher can issue one operation per cycle (2-stage
    /// pipeline, the paper's 13× design) or must iterate.
    pub pipelined: bool,
}

impl HwEstimate {
    /// Maximum clock in MHz.
    pub fn clock_mhz(&self) -> f64 {
        1000.0 / self.period_ns
    }

    /// Area overhead relative to `base`, in percent (Table I: 28.2 %).
    pub fn area_overhead_vs(&self, base: &HwEstimate) -> f64 {
        (self.slices / base.slices - 1.0) * 100.0
    }

    /// Clock slowdown relative to `base`, in percent of *period increase*
    /// (the paper's "clock is 84.6 % slower" convention: the period grows
    /// by 84.6 %).
    pub fn clock_slowdown_vs(&self, base: &HwEstimate) -> f64 {
        (self.period_ns / base.period_ns - 1.0) * 100.0
    }
}

/// The unmodified LEON3 (Table I, row "Vanilla").
pub fn vanilla() -> HwEstimate {
    HwEstimate {
        name: "vanilla",
        unroll: 0,
        slices: LEON3_SLICES,
        period_ns: LEON3_PERIOD_NS,
        cycles_per_op: 0,
        pipelined: false,
    }
}

/// A SOFIA core with `unroll` cipher rounds per cycle (1 ≤ unroll ≤ 26).
///
/// # Panics
///
/// Panics if `unroll` is 0 or exceeds 26 (25 rounds + final key add).
pub fn sofia(unroll: u32) -> HwEstimate {
    assert!((1..=ROUNDS as u32 + 1).contains(&unroll), "unroll 1..=26");
    let cipher_path = CIPHER_FIXED_NS + unroll as f64 * ROUND_DELAY_NS;
    let period_ns = cipher_path.max(LEON3_PERIOD_NS);
    // 25 S-box/shift rounds + the final key addition = 26 round-slots;
    // u of them fit per cycle (u=1 → the paper's 26 cycles, u=13 → 2).
    let cycles_per_op = (ROUNDS as u32 + 1).div_ceil(unroll);
    // ≥13 rounds/cycle leaves ≤2 stages: a classic 2-stage pipeline that
    // accepts one op per cycle (the implementation the paper cites [36]).
    let pipelined = unroll >= PAPER_UNROLL;
    HwEstimate {
        name: "sofia",
        unroll,
        slices: LEON3_SLICES + FIXED_OVERHEAD_SLICES + unroll as f64 * ROUND_SLICES,
        period_ns,
        cycles_per_op,
        pipelined,
    }
}

/// Fixed area of the verified-block cache's control (LRU state, hit/miss
/// steering into the decrypt bypass, the flush line), in slices.
pub const VCACHE_FIXED_SLICES: f64 = 80.0;

/// Slices per cached edge: a ~64-bit tag (`{prevPC ‖ PC}`) plus eight
/// 32-bit plaintext words in LUT RAM (~320 bits ≈ 1.5 slices of
/// distributed RAM on Virtex-6) and its share of the tag comparators.
pub const VCACHE_ENTRY_SLICES: f64 = 2.0;

/// A SOFIA core extended with an `entries`-edge verified-block cache.
///
/// The cache adds area but not delay: the tag compare reads registered
/// edge state in IF, in parallel with the ciphertext I-cache tag path,
/// and the cipher path — the critical one — is untouched (a hit simply
/// gates the cipher's enable). So the clock column equals the uncached
/// SOFIA core's and only the slice column grows.
///
/// # Panics
///
/// Panics if `unroll` is out of range (see [`sofia`]) or `entries` is 0.
pub fn sofia_with_vcache(unroll: u32, entries: u32) -> HwEstimate {
    assert!(entries > 0, "entries 1..");
    let base = sofia(unroll);
    HwEstimate {
        name: "sofia+vcache",
        slices: base.slices + VCACHE_FIXED_SLICES + entries as f64 * VCACHE_ENTRY_SLICES,
        ..base
    }
}

/// Fixed area of the sponge-CFP fetch path beyond the permutation
/// rounds: the state register, the XOR whitening into decode and the
/// patch-application mux (no MAC unit, no mux-block steering).
pub const SPONGE_FIXED_SLICES: f64 = 250.0;

/// Fixed area of the FIPAC check unit: the running-state register, the
/// signature comparator and the trap line (the update logic itself is
/// the round slices).
pub const FIPAC_FIXED_SLICES: f64 = 200.0;

/// Rounds per cycle the FIPAC state-update pipeline is provisioned with.
/// The update has a whole basic block to settle before the next check
/// can consult it, so a narrow iterative datapath suffices.
pub const FIPAC_UNROLL: u32 = 5;

/// A sponge-CFP core (Werner et al., SCFP): the permutation sits on the
/// fetch critical path exactly like SOFIA's decrypt — same unrolled
/// datapath, same period — but the scheme needs no CBC-MAC unit and no
/// multiplexor-block steering, so the fixed overhead is smaller. The
/// chain is serial per word, so the datapath cannot be operated as an
/// issue-per-cycle pipeline: `pipelined` is false at every unroll.
pub fn sponge_cfp() -> HwEstimate {
    let unroll = PAPER_UNROLL;
    let cipher_path = CIPHER_FIXED_NS + unroll as f64 * ROUND_DELAY_NS;
    HwEstimate {
        name: "sponge-cfp",
        unroll,
        slices: LEON3_SLICES + SPONGE_FIXED_SLICES + unroll as f64 * ROUND_SLICES,
        period_ns: cipher_path.max(LEON3_PERIOD_NS),
        cycles_per_op: (ROUNDS as u32 + 1).div_ceil(unroll),
        pipelined: false,
    }
}

/// A FIPAC-style core (Nasahl et al.): plaintext fetch, so the cipher is
/// *off* the critical path and the core keeps the vanilla clock; the
/// keyed state update runs on a narrow iterative datapath
/// ([`FIPAC_UNROLL`] rounds/cycle) beside the pipeline.
pub fn fipac() -> HwEstimate {
    HwEstimate {
        name: "fipac",
        unroll: FIPAC_UNROLL,
        slices: LEON3_SLICES + FIPAC_FIXED_SLICES + FIPAC_UNROLL as f64 * ROUND_SLICES,
        period_ns: LEON3_PERIOD_NS,
        cycles_per_op: (ROUNDS as u32 + 1).div_ceil(FIPAC_UNROLL),
        pipelined: false,
    }
}

/// Table I, regenerated: the vanilla row and the SOFIA row at the paper's
/// 13× design point.
pub fn table1() -> (HwEstimate, HwEstimate) {
    (vanilla(), sofia(PAPER_UNROLL))
}

/// The unrolling ablation: every power-of-two-ish design point plus the
/// paper's, for the area/clock/throughput trade-off study.
pub fn unroll_sweep() -> Vec<HwEstimate> {
    [1, 2, 5, 9, 13, 26].iter().map(|&u| sofia(u)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let (v, s) = table1();
        assert!((v.slices - 5889.0).abs() < 0.5);
        assert!((v.clock_mhz() - 92.3).abs() < 0.1);
        assert!((s.slices - 7551.0).abs() < 0.5);
        assert!((s.clock_mhz() - 50.1).abs() < 0.1);
    }

    #[test]
    fn table1_overhead_percentages() {
        let (v, s) = table1();
        // Paper: "hardware area increased by 28.2%, clock 84.6% slower".
        assert!((s.area_overhead_vs(&v) - 28.2).abs() < 0.5);
        assert!((s.clock_slowdown_vs(&v) - 84.6).abs() < 1.0);
    }

    #[test]
    fn paper_design_point_is_two_cycles() {
        let s = sofia(PAPER_UNROLL);
        assert_eq!(s.cycles_per_op, 2);
        assert!(s.pipelined);
    }

    #[test]
    fn iterated_design_keeps_full_clock() {
        // 1 round/cycle: the cipher path is short, LEON3 dominates.
        let s = sofia(1);
        assert!((s.clock_mhz() - 92.3).abs() < 0.1);
        assert_eq!(s.cycles_per_op, 26);
        assert!(!s.pipelined);
    }

    #[test]
    fn single_cycle_design_is_big_and_slow() {
        let s = sofia(26);
        assert_eq!(s.cycles_per_op, 1);
        assert!(s.slices > sofia(13).slices);
        assert!(s.clock_mhz() < 30.0);
    }

    #[test]
    fn area_grows_monotonically_with_unroll() {
        let sweep = unroll_sweep();
        for pair in sweep.windows(2) {
            assert!(pair[0].slices < pair[1].slices);
            assert!(pair[0].period_ns <= pair[1].period_ns);
        }
    }

    #[test]
    #[should_panic(expected = "unroll")]
    fn zero_unroll_rejected() {
        let _ = sofia(0);
    }

    #[test]
    fn vcache_adds_area_but_not_delay() {
        let base = sofia(PAPER_UNROLL);
        let small = sofia_with_vcache(PAPER_UNROLL, 64);
        let big = sofia_with_vcache(PAPER_UNROLL, 256);
        // Clock, cycles/op and pipelining are untouched.
        assert_eq!(small.period_ns, base.period_ns);
        assert_eq!(small.cycles_per_op, base.cycles_per_op);
        assert_eq!(small.pipelined, base.pipelined);
        // Area grows linearly in entries.
        assert!(small.slices > base.slices);
        assert!(
            (big.slices - small.slices - 192.0 * VCACHE_ENTRY_SLICES).abs() < 1e-9,
            "entry slices must scale linearly"
        );
        // A 256-edge cache stays a modest fraction of the SOFIA core.
        assert!((big.slices / base.slices - 1.0) * 100.0 < 10.0);
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn zero_entry_vcache_rejected() {
        let _ = sofia_with_vcache(PAPER_UNROLL, 0);
    }

    #[test]
    fn backend_area_ordering() {
        // vanilla < fipac < sponge < sofia: each scheme adds hardware in
        // proportion to what it enforces.
        let v = vanilla();
        let f = fipac();
        let sp = sponge_cfp();
        let so = sofia(PAPER_UNROLL);
        assert!(v.slices < f.slices);
        assert!(f.slices < sp.slices);
        assert!(sp.slices < so.slices);
    }

    #[test]
    fn fipac_keeps_the_vanilla_clock() {
        // The keyed update is off the critical path.
        let v = vanilla();
        let f = fipac();
        assert_eq!(f.period_ns, v.period_ns);
        assert!(f.clock_slowdown_vs(&v).abs() < 1e-9);
    }

    #[test]
    fn sponge_pays_the_cipher_critical_path() {
        // Same unrolled permutation on the fetch path as SOFIA's decrypt
        // → same period, but the serial chain can never pipeline.
        let sp = sponge_cfp();
        let so = sofia(PAPER_UNROLL);
        assert_eq!(sp.period_ns, so.period_ns);
        assert!(!sp.pipelined);
        assert!(so.pipelined);
    }
}
