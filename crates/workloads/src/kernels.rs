//! Embedded integer kernels extending the evaluation beyond the paper's
//! single benchmark: CRC-32, FIR filtering, bubble sort, matrix multiply,
//! Fibonacci, `memcpy`, and a function-pointer dispatch loop that
//! deliberately exercises SOFIA's indirect-call machinery.
//!
//! Every kernel embeds deterministic inputs in its data section and emits
//! checksums on the MMIO word port; a bit-exact golden Rust model
//! computes the expected values.

use crate::gen::{byte_directives, random_bytes, random_words, word_directives};
use crate::Workload;

const PRELUDE: &str = ".equ OUT, 0xFFFF0000\n.text\n.global main\n";

/// Iterative Fibonacci: `fib(n) mod 2^32`.
pub fn fib(n: u32) -> Workload {
    let mut a = 0u32;
    let mut b = 1u32;
    for _ in 0..n {
        let t = a.wrapping_add(b);
        a = b;
        b = t;
    }
    let source = format!(
        "{PRELUDE}
main:
    li   t0, {n}
    li   t1, 0
    li   t2, 1
fib_loop:
    beqz t0, fib_done
    add  t3, t1, t2
    mv   t1, t2
    mv   t2, t3
    subi t0, t0, 1
    b    fib_loop
fib_done:
    li   t4, OUT
    sw   t1, 0(t4)
    halt
"
    );
    Workload {
        name: "fib",
        description: "iterative Fibonacci (branch-dominated loop)",
        source,
        expected: vec![a],
    }
}

/// Bitwise CRC-32 (poly `0xEDB88320`) over `len` pseudo-random bytes.
pub fn crc32(len: usize) -> Workload {
    let data = random_bytes(len, 0xC12C);
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in &data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    crc = !crc;
    let source = format!(
        "{PRELUDE}
main:
    la   s0, data
    li   s1, {len}
    li   s2, 0xFFFFFFFF
    li   s3, 0xEDB88320
crc_byte:
    beqz s1, crc_done
    lbu  t0, 0(s0)
    xor  s2, s2, t0
    li   t1, 8
crc_bit:
    beqz t1, crc_next
    andi t2, s2, 1
    srl  s2, s2, 1
    beqz t2, crc_skip
    xor  s2, s2, s3
crc_skip:
    subi t1, t1, 1
    b    crc_bit
crc_next:
    addi s0, s0, 1
    subi s1, s1, 1
    b    crc_byte
crc_done:
    not  s2, s2
    li   t4, OUT
    sw   s2, 0(t4)
    halt

.data
data:
{}",
        byte_directives(&data)
    );
    Workload {
        name: "crc32",
        description: "bitwise CRC-32 over a byte stream",
        source,
        expected: vec![crc],
    }
}

/// Bubble sort of `n` pseudo-random words (unsigned ascending), verified
/// through an order-sensitive checksum `Σ arr[i]·(i+1)`.
pub fn bubble_sort(n: usize) -> Workload {
    let mut data = random_words(n, 0x50F7);
    let source = format!(
        "{PRELUDE}
main:
    la   s0, arr
    li   s1, {n}
    li   t0, 0
outer:
    subi t1, s1, 1
    bge  t0, t1, sorted
    li   t2, 0
inner:
    sub  t3, s1, t0
    subi t3, t3, 1
    bge  t2, t3, outer_next
    sll  t4, t2, 2
    add  t4, s0, t4
    lw   t5, 0(t4)
    lw   t6, 4(t4)
    bleu t5, t6, no_swap
    sw   t6, 0(t4)
    sw   t5, 4(t4)
no_swap:
    addi t2, t2, 1
    b    inner
outer_next:
    addi t0, t0, 1
    b    outer
sorted:
    li   t0, 0
    li   t2, 0
chk:
    bge  t0, s1, chk_done
    sll  t3, t0, 2
    add  t3, s0, t3
    lw   t4, 0(t3)
    addi t5, t0, 1
    mul  t4, t4, t5
    add  t2, t2, t4
    addi t0, t0, 1
    b    chk
chk_done:
    li   t4, OUT
    sw   t2, 0(t4)
    halt

.data
arr:
{}",
        word_directives(&data)
    );
    data.sort_unstable();
    let checksum = data.iter().enumerate().fold(0u32, |a, (i, &v)| {
        a.wrapping_add(v.wrapping_mul(i as u32 + 1))
    });
    Workload {
        name: "bubble_sort",
        description: "in-place bubble sort with store-heavy inner loop",
        source,
        expected: vec![checksum],
    }
}

/// 16-tap integer FIR filter over `n` samples; checksum of all outputs.
pub fn fir(n: usize) -> Workload {
    assert!(n > 16, "need more samples than taps");
    let coefs: Vec<u32> = (0i32..16).map(|k| ((k - 8) * 3 + 5) as u32).collect();
    let samples = random_words(n, 0xF12);
    let nout = n - 15;
    let mut checksum = 0u32;
    for i in 0..nout {
        let mut acc = 0u32;
        for k in 0..16 {
            acc = acc.wrapping_add(coefs[k].wrapping_mul(samples[i + k]));
        }
        checksum = checksum.wrapping_add(acc);
    }
    let source = format!(
        "{PRELUDE}
main:
    la   s0, coefs
    la   s1, samples
    li   s2, {nout}
    li   s3, 0
    li   s4, 0
fir_outer:
    bge  s4, s2, fir_done
    li   t0, 0
    li   t1, 0
    sll  t2, s4, 2
    add  t2, s1, t2
fir_inner:
    li   t3, 16
    bge  t0, t3, fir_acc
    sll  t4, t0, 2
    add  t5, s0, t4
    lw   t5, 0(t5)
    add  t6, t2, t4
    lw   t6, 0(t6)
    mul  t5, t5, t6
    add  t1, t1, t5
    addi t0, t0, 1
    b    fir_inner
fir_acc:
    add  s3, s3, t1
    addi s4, s4, 1
    b    fir_outer
fir_done:
    li   t4, OUT
    sw   s3, 0(t4)
    halt

.data
coefs:
{}samples:
{}",
        word_directives(&coefs),
        word_directives(&samples)
    );
    Workload {
        name: "fir",
        description: "16-tap integer FIR filter (multiply-dominated)",
        source,
        expected: vec![checksum],
    }
}

/// 8×8 integer matrix multiply with a stored result matrix.
pub fn matmul() -> Workload {
    let a = random_words(64, 0xAAA);
    let b = random_words(64, 0xBBB);
    let mut checksum = 0u32;
    for i in 0..8 {
        for j in 0..8 {
            let mut acc = 0u32;
            for k in 0..8 {
                acc = acc.wrapping_add(a[i * 8 + k].wrapping_mul(b[k * 8 + j]));
            }
            checksum = checksum.wrapping_add(acc);
        }
    }
    let source = format!(
        "{PRELUDE}
main:
    la   s0, a_mat
    la   s1, b_mat
    la   s2, cbuf
    li   s3, 0
mm_i:
    li   t0, 8
    bge  s3, t0, mm_done
    li   s4, 0
mm_j:
    li   t0, 8
    bge  s4, t0, mm_i_next
    li   s5, 0
    li   s6, 0
mm_k:
    li   t0, 8
    bge  s5, t0, mm_store
    sll  t1, s3, 5
    sll  t2, s5, 2
    add  t1, t1, t2
    add  t1, s0, t1
    lw   t3, 0(t1)
    sll  t1, s5, 5
    sll  t2, s4, 2
    add  t1, t1, t2
    add  t1, s1, t1
    lw   t4, 0(t1)
    mul  t3, t3, t4
    add  s6, s6, t3
    addi s5, s5, 1
    b    mm_k
mm_store:
    sll  t1, s3, 5
    sll  t2, s4, 2
    add  t1, t1, t2
    add  t1, s2, t1
    sw   s6, 0(t1)
    addi s4, s4, 1
    b    mm_j
mm_i_next:
    addi s3, s3, 1
    b    mm_i
mm_done:
    la   t0, cbuf
    li   t1, 64
    li   t2, 0
mm_chk:
    beqz t1, mm_out
    lw   t3, 0(t0)
    add  t2, t2, t3
    addi t0, t0, 4
    subi t1, t1, 1
    b    mm_chk
mm_out:
    li   t4, OUT
    sw   t2, 0(t4)
    halt

.data
a_mat:
{}b_mat:
{}.align 4
cbuf: .space 256
",
        word_directives(&a),
        word_directives(&b)
    );
    Workload {
        name: "matmul",
        description: "8x8 integer matrix multiply (nested loops, stores)",
        source,
        expected: vec![checksum],
    }
}

/// Word-wise `memcpy` with byte tail, then verify + checksum.
pub fn memcpy(len: usize) -> Workload {
    let src = random_bytes(len, 0x3333);
    let checksum = src.iter().fold(0u32, |a, &b| a.wrapping_add(b as u32));
    let source = format!(
        "{PRELUDE}
main:
    la   s0, src
    la   s1, dst
    li   s2, {len}
    srl  t0, s2, 2
mc_w:
    beqz t0, mc_tail
    lw   t1, 0(s0)
    sw   t1, 0(s1)
    addi s0, s0, 4
    addi s1, s1, 4
    subi t0, t0, 1
    b    mc_w
mc_tail:
    andi t0, s2, 3
mc_b:
    beqz t0, mc_verify
    lbu  t1, 0(s0)
    sb   t1, 0(s1)
    addi s0, s0, 1
    addi s1, s1, 1
    subi t0, t0, 1
    b    mc_b
mc_verify:
    la   s0, src
    la   s1, dst
    li   t2, 0
    li   t3, 0
    mv   t0, s2
mc_v:
    beqz t0, mc_out
    lbu  t5, 0(s0)
    lbu  t6, 0(s1)
    add  t2, t2, t6
    beq  t5, t6, mc_vnext
    addi t3, t3, 1
mc_vnext:
    addi s0, s0, 1
    addi s1, s1, 1
    subi t0, t0, 1
    b    mc_v
mc_out:
    li   t4, OUT
    sw   t2, 0(t4)
    sw   t3, 0(t4)
    halt

.data
.align 4
src:
{}
.align 4
dst: .space {len}
",
        byte_directives(&src)
    );
    Workload {
        name: "memcpy",
        description: "word-wise memcpy with byte tail and verification",
        source,
        expected: vec![checksum, 0],
    }
}

/// A function-pointer state machine: `steps` dispatches through a 4-entry
/// handler table — exercising SOFIA's dispatch ladders, mux trees and
/// multi-caller returns.
pub fn dispatch(steps: u32) -> Workload {
    fn h0(s: u32) -> u32 {
        s.wrapping_mul(5).wrapping_add(1)
    }
    fn h1(s: u32) -> u32 {
        (s ^ 0x2557).wrapping_add(3)
    }
    fn h2(s: u32) -> u32 {
        s.rotate_left(7)
    }
    fn h3(s: u32) -> u32 {
        s.wrapping_add(s >> 3)
    }
    let mut state = 0x1234u32;
    for _ in 0..steps {
        state = match state & 3 {
            0 => h0(state),
            1 => h1(state),
            2 => h2(state),
            _ => h3(state),
        };
    }
    let source = format!(
        "{PRELUDE}
main:
    li   s0, 0x1234
    li   s1, {steps}
disp_loop:
    beqz s1, disp_done
    andi t0, s0, 3
    sll  t0, t0, 2
    la   t1, handlers
    add  t1, t1, t0
    lw   t2, 0(t1)
    mv   a0, s0
    .indirect h0, h1, h2, h3
    jalr t2
    mv   s0, v0
    subi s1, s1, 1
    b    disp_loop
disp_done:
    li   t4, OUT
    sw   s0, 0(t4)
    halt
h0:
    li   t0, 5
    mul  v0, a0, t0
    addi v0, v0, 1
    ret
h1:
    xori v0, a0, 0x2557
    addi v0, v0, 3
    ret
h2:
    sll  t0, a0, 7
    srl  t1, a0, 25
    or   v0, t0, t1
    ret
h3:
    srl  t0, a0, 3
    add  v0, a0, t0
    ret

.data
handlers: .word h0, h1, h2, h3
"
    );
    Workload {
        name: "dispatch",
        description: "function-pointer state machine (indirect calls)",
        source,
        expected: vec![state],
    }
}

/// Recursive quicksort (Lomuto partition) over `n` pseudo-random words —
/// deep call stacks and a recursive function whose three call sites
/// (one external, two internal) exercise SOFIA's multiplexor trees.
pub fn quicksort(n: usize) -> Workload {
    assert!(n >= 2, "need at least two elements");
    let mut data = random_words(n, 0x50B7);
    let last_off = (n - 1) * 4;
    assert!(last_off <= i16::MAX as usize, "array too large for addi");
    let source = format!(
        "{PRELUDE}
main:
    la   a0, arr
    la   a1, arr
    addi a1, a1, {last_off}
    jal  qsort
    la   s0, arr
    li   s1, {n}
    li   t0, 0
    li   t2, 0
qchk:
    bge  t0, s1, qchk_done
    sll  t3, t0, 2
    add  t3, s0, t3
    lw   t4, 0(t3)
    addi t5, t0, 1
    mul  t4, t4, t5
    add  t2, t2, t4
    addi t0, t0, 1
    b    qchk
qchk_done:
    li   t4, OUT
    sw   t2, 0(t4)
    halt

# qsort(a0 = &lo, a1 = &hi), unsigned ascending, Lomuto partition.
qsort:
    bgeu a0, a1, qs_ret
    subi sp, sp, 16
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    sw   s1, 8(sp)
    sw   s2, 12(sp)
    mv   s0, a0
    mv   s1, a1
    lw   t0, 0(s1)
    mv   s2, s0
    mv   t1, s0
qs_loop:
    bgeu t1, s1, qs_pivot
    lw   t2, 0(t1)
    bgeu t2, t0, qs_next
    lw   t3, 0(s2)
    sw   t2, 0(s2)
    sw   t3, 0(t1)
    addi s2, s2, 4
qs_next:
    addi t1, t1, 4
    b    qs_loop
qs_pivot:
    lw   t2, 0(s2)
    lw   t3, 0(s1)
    sw   t3, 0(s2)
    sw   t2, 0(s1)
    mv   a0, s0
    subi a1, s2, 4
    jal  qsort
    addi a0, s2, 4
    mv   a1, s1
    jal  qsort
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    lw   s1, 8(sp)
    lw   s2, 12(sp)
    addi sp, sp, 16
qs_ret:
    ret

.data
arr:
{}",
        word_directives(&data)
    );
    data.sort_unstable();
    let checksum = data.iter().enumerate().fold(0u32, |a, (i, &v)| {
        a.wrapping_add(v.wrapping_mul(i as u32 + 1))
    });
    Workload {
        name: "quicksort",
        description: "recursive quicksort (deep stacks, recursive mux trees)",
        source,
        expected: vec![checksum],
    }
}

/// Naive substring search: counts (overlapping) occurrences of a planted
/// needle in a pseudo-random haystack.
pub fn strsearch(hay_len: usize) -> Workload {
    let needle = b"SOFIA";
    let mut hay = random_bytes(hay_len, 0x57A9);
    // Plant a few needles at deterministic positions.
    let mut plant = 7usize;
    while plant + needle.len() < hay.len() {
        hay[plant..plant + needle.len()].copy_from_slice(needle);
        plant += 97;
    }
    let count = hay.windows(needle.len()).filter(|w| *w == needle).count() as u32;
    let nlen = needle.len();
    let source = format!(
        "{PRELUDE}
main:
    la   s0, hay
    li   s1, {hay_len}
    la   s2, needle
    li   s3, {nlen}
    li   s4, 0
    li   t0, 0
    sub  s5, s1, s3
ss_outer:
    bgt  t0, s5, ss_done
    li   t1, 0
ss_inner:
    bge  t1, s3, ss_match
    add  t2, s0, t0
    add  t2, t2, t1
    lbu  t3, 0(t2)
    add  t4, s2, t1
    lbu  t5, 0(t4)
    bne  t3, t5, ss_nomatch
    addi t1, t1, 1
    b    ss_inner
ss_match:
    addi s4, s4, 1
ss_nomatch:
    addi t0, t0, 1
    b    ss_outer
ss_done:
    li   t7, OUT
    sw   s4, 0(t7)
    halt

.data
needle:
{}
hay:
{}",
        byte_directives(needle),
        byte_directives(&hay)
    );
    Workload {
        name: "strsearch",
        description: "naive substring search (byte loads, nested loops)",
        source,
        expected: vec![count],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_on_vanilla() {
        fib(30).verify_on_vanilla().unwrap();
    }

    #[test]
    fn crc32_on_vanilla() {
        crc32(128).verify_on_vanilla().unwrap();
    }

    #[test]
    fn crc32_golden_known_vector() {
        // CRC-32 of "123456789" is the classic 0xCBF43926; check the host
        // model logic with a direct computation.
        let mut crc = 0xFFFF_FFFFu32;
        for &byte in b"123456789" {
            crc ^= byte as u32;
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= 0xEDB8_8320;
                }
            }
        }
        assert_eq!(!crc, 0xCBF4_3926);
    }

    #[test]
    fn bubble_sort_on_vanilla() {
        bubble_sort(40).verify_on_vanilla().unwrap();
    }

    #[test]
    fn fir_on_vanilla() {
        fir(64).verify_on_vanilla().unwrap();
    }

    #[test]
    fn matmul_on_vanilla() {
        matmul().verify_on_vanilla().unwrap();
    }

    #[test]
    fn memcpy_on_vanilla() {
        memcpy(123).verify_on_vanilla().unwrap();
    }

    #[test]
    fn dispatch_on_vanilla() {
        dispatch(100).verify_on_vanilla().unwrap();
    }

    #[test]
    fn quicksort_on_vanilla() {
        quicksort(40).verify_on_vanilla().unwrap();
    }

    #[test]
    fn quicksort_sorted_and_reverse_inputs() {
        // quicksort over adversarial shapes still terminates and matches.
        quicksort(2).verify_on_vanilla().unwrap();
        quicksort(17).verify_on_vanilla().unwrap();
    }

    #[test]
    fn strsearch_on_vanilla() {
        let w = strsearch(300);
        assert!(w.expected[0] >= 2, "needles must be planted");
        w.verify_on_vanilla().unwrap();
    }
}
