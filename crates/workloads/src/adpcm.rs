//! The paper's benchmark: MediaBench (I) ADPCM — the Intel/DVI **IMA
//! ADPCM** codec (`rawcaudio`/`rawdaudio`), reproduced as hand-written
//! SL32 assembly plus a bit-exact golden Rust model (DESIGN.md,
//! substitution S3/S4).
//!
//! The program encodes `n` 16-bit PCM samples to 4-bit codes and decodes
//! them back, emitting on the MMIO word port: the encoded byte count, a
//! checksum of the encoded bytes, and a checksum of the decoded samples.
//! The golden model computes the same three words on the host; agreement
//! on both the vanilla and the SOFIA machine is the correctness criterion
//! for the whole stack.

use crate::gen::{half_directives, synth_pcm};
use crate::Workload;

/// The 89-entry IMA step-size table.
pub const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 158, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// The 16-entry IMA index-adjustment table.
pub const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Codec state carried between calls (IMA `valprev`/`index`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdpcmState {
    /// Previous predicted value.
    pub valprev: i32,
    /// Step-table index.
    pub index: i32,
}

/// Golden IMA ADPCM encoder, bit-exact with the MediaBench `adpcm_coder`.
pub fn encode(input: &[i16], state: &mut AdpcmState) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 1);
    let mut valpred = state.valprev;
    let mut index = state.index;
    let mut step = STEP_TABLE[index as usize];
    let mut bufferstep = true;
    let mut outputbuffer = 0i32;
    for &sample in input {
        let val = sample as i32;
        let mut diff = val - valpred;
        let sign = if diff < 0 { 8 } else { 0 };
        if sign != 0 {
            diff = -diff;
        }
        let mut delta = 0;
        let mut vpdiff = step >> 3;
        if diff >= step {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        let mut s = step >> 1;
        if diff >= s {
            delta |= 2;
            diff -= s;
            vpdiff += s;
        }
        s >>= 1;
        if diff >= s {
            delta |= 1;
            vpdiff += s;
        }
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = valpred.clamp(-32768, 32767);
        delta |= sign;
        index += INDEX_TABLE[delta as usize];
        index = index.clamp(0, 88);
        step = STEP_TABLE[index as usize];
        if bufferstep {
            outputbuffer = (delta << 4) & 0xF0;
        } else {
            out.push(((delta & 0x0F) | outputbuffer) as u8);
        }
        bufferstep = !bufferstep;
    }
    if !bufferstep {
        out.push(outputbuffer as u8);
    }
    state.valprev = valpred;
    state.index = index;
    out
}

/// Golden IMA ADPCM decoder (`adpcm_decoder`), producing `len` samples.
pub fn decode(input: &[u8], len: usize, state: &mut AdpcmState) -> Vec<i16> {
    let mut out = Vec::with_capacity(len);
    let mut valpred = state.valprev;
    let mut index = state.index;
    let mut step = STEP_TABLE[index as usize];
    let mut bufferstep = false;
    let mut inputbuffer = 0i32;
    let mut inp = input.iter();
    for _ in 0..len {
        let delta = if bufferstep {
            inputbuffer & 0xF
        } else {
            inputbuffer = *inp.next().expect("enough encoded bytes") as i32;
            (inputbuffer >> 4) & 0xF
        };
        bufferstep = !bufferstep;
        index += INDEX_TABLE[delta as usize];
        index = index.clamp(0, 88);
        let sign = delta & 8;
        let magnitude = delta & 7;
        let mut vpdiff = step >> 3;
        if magnitude & 4 != 0 {
            vpdiff += step;
        }
        if magnitude & 2 != 0 {
            vpdiff += step >> 1;
        }
        if magnitude & 1 != 0 {
            vpdiff += step >> 2;
        }
        if sign != 0 {
            valpred -= vpdiff;
        } else {
            valpred += vpdiff;
        }
        valpred = valpred.clamp(-32768, 32767);
        step = STEP_TABLE[index as usize];
        out.push(valpred as i16);
    }
    state.valprev = valpred;
    state.index = index;
    out
}

/// Checksum used by both the SL32 program and the golden model:
/// wrapping 32-bit sum of zero-extended bytes.
pub fn byte_checksum(bytes: &[u8]) -> u32 {
    bytes.iter().fold(0u32, |a, &b| a.wrapping_add(b as u32))
}

/// Wrapping 32-bit sum of samples as unsigned 16-bit values.
pub fn sample_checksum(samples: &[i16]) -> u32 {
    samples
        .iter()
        .fold(0u32, |a, &s| a.wrapping_add(s as u16 as u32))
}

/// Builds the ADPCM workload over `n` synthetic PCM samples.
///
/// # Examples
///
/// ```
/// let w = sofia_workloads::adpcm::workload(64);
/// assert_eq!(w.expected.len(), 3);
/// w.verify_on_vanilla().unwrap();
/// ```
pub fn workload(n: usize) -> Workload {
    let input = synth_pcm(n, 0x50F1A);
    let mut enc_state = AdpcmState::default();
    let encoded = encode(&input, &mut enc_state);
    let mut dec_state = AdpcmState::default();
    let decoded = decode(&encoded, n, &mut dec_state);
    let expected = vec![
        encoded.len() as u32,
        byte_checksum(&encoded),
        sample_checksum(&decoded),
    ];

    let mut source = String::new();
    source.push_str(&format!(
        ".equ NSAMP, {n}\n.equ OUT, 0xFFFF0000\n\n.text\n.global main\n"
    ));
    source.push_str(MAIN_ASM);
    source.push_str(CODER_ASM);
    source.push_str(DECODER_ASM);
    source.push_str("\n.data\nstep_table:\n");
    for chunk in STEP_TABLE.chunks(8) {
        let row: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        source.push_str(&format!("    .word {}\n", row.join(", ")));
    }
    source.push_str("index_table:\n");
    let row: Vec<String> = INDEX_TABLE.iter().map(|v| v.to_string()).collect();
    source.push_str(&format!("    .word {}\n", row.join(", ")));
    source.push_str("input:\n");
    source.push_str(&half_directives(&input));
    source.push_str(&format!(
        "\n.align 4\nencbuf: .space {}\n.align 4\ndecbuf: .space {}\n",
        n / 2 + 4,
        2 * n + 4
    ));

    Workload {
        name: "adpcm",
        description: "MediaBench IMA ADPCM encode + decode (the paper's benchmark)",
        source,
        expected,
    }
}

/// `main`: encode, checksum, decode, checksum, emit three words.
const MAIN_ASM: &str = r#"
main:
    la   a0, input
    la   a1, encbuf
    li   a2, NSAMP
    jal  adpcm_coder          # v0 = encoded byte count
    mv   s0, v0               # s0 = nbytes

    li   t0, OUT
    sw   v0, 0(t0)            # out[0] = nbytes

    # checksum encoded bytes
    la   t1, encbuf
    li   t2, 0                # sum
    mv   t3, s0
csum_enc:
    beqz t3, csum_enc_done
    lbu  t4, 0(t1)
    add  t2, t2, t4
    addi t1, t1, 1
    subi t3, t3, 1
    b    csum_enc
csum_enc_done:
    li   t0, OUT
    sw   t2, 0(t0)            # out[1] = encoded checksum

    la   a0, encbuf
    la   a1, decbuf
    li   a2, NSAMP
    jal  adpcm_decoder

    # checksum decoded samples (as u16)
    la   t1, decbuf
    li   t2, 0
    li   t3, NSAMP
csum_dec:
    beqz t3, csum_dec_done
    lhu  t4, 0(t1)
    add  t2, t2, t4
    addi t1, t1, 2
    subi t3, t3, 1
    b    csum_dec
csum_dec_done:
    li   t0, OUT
    sw   t2, 0(t0)            # out[2] = decoded checksum
    halt
"#;

/// `adpcm_coder(a0=inp, a1=outp, a2=len) -> v0 = bytes written`.
///
/// Register plan: s0=inp s1=outp s2=len s3=valpred s4=index s5=step
/// s6=bufferstep s7=outputbuffer a0=step_table a1=index_table.
const CODER_ASM: &str = r#"
adpcm_coder:
    mv   s0, a0
    mv   s1, a1
    mv   s2, a2
    mv   t9, a1               # remember outp base for byte count
    li   s3, 0                # valpred (state->valprev = 0)
    li   s4, 0                # index
    la   a0, step_table
    la   a1, index_table
    sll  t0, s4, 2
    add  t0, a0, t0
    lw   s5, 0(t0)            # step = stepTable[index]
    li   s6, 1                # bufferstep = 1
    li   s7, 0
enc_loop:
    beqz s2, enc_done
    lh   t0, 0(s0)            # val
    addi s0, s0, 2
    sub  t1, t0, s3           # diff = val - valpred
    li   t2, 0                # sign
    bge  t1, zero, enc_pos
    li   t2, 8
    sub  t1, zero, t1
enc_pos:
    li   t3, 0                # delta
    sra  t4, s5, 3            # vpdiff = step >> 3
    blt  t1, s5, enc_b2
    li   t3, 4
    sub  t1, t1, s5
    add  t4, t4, s5
enc_b2:
    sra  t5, s5, 1            # step >> 1
    blt  t1, t5, enc_b1
    ori  t3, t3, 2
    sub  t1, t1, t5
    add  t4, t4, t5
enc_b1:
    sra  t5, t5, 1            # step >> 2
    blt  t1, t5, enc_sgn
    ori  t3, t3, 1
    add  t4, t4, t5
enc_sgn:
    beqz t2, enc_addp
    sub  s3, s3, t4
    b    enc_clamp
enc_addp:
    add  s3, s3, t4
enc_clamp:
    li   t5, 32767
    ble  s3, t5, enc_cl2
    mv   s3, t5
enc_cl2:
    li   t5, -32768
    bge  s3, t5, enc_cl3
    mv   s3, t5
enc_cl3:
    or   t3, t3, t2           # delta |= sign
    sll  t5, t3, 2
    add  t5, a1, t5
    lw   t5, 0(t5)            # indexTable[delta]
    add  s4, s4, t5
    bge  s4, zero, enc_ix2
    li   s4, 0
enc_ix2:
    li   t5, 88
    ble  s4, t5, enc_ix3
    mv   s4, t5
enc_ix3:
    sll  t5, s4, 2
    add  t5, a0, t5
    lw   s5, 0(t5)            # step = stepTable[index]
    beqz s6, enc_flush
    sll  s7, t3, 4
    andi s7, s7, 0xf0
    li   s6, 0
    b    enc_next
enc_flush:
    andi t5, t3, 0x0f
    or   t5, t5, s7
    sb   t5, 0(s1)
    addi s1, s1, 1
    li   s6, 1
enc_next:
    subi s2, s2, 1
    b    enc_loop
enc_done:
    bnez s6, enc_count
    sb   s7, 0(s1)
    addi s1, s1, 1
enc_count:
    sub  v0, s1, t9           # bytes written
    ret
"#;

/// `adpcm_decoder(a0=inp, a1=outp, a2=len_samples)`.
///
/// Register plan: s0=inp s1=outp s2=len s3=valpred s4=index s5=step
/// s6=bufferstep s7=inputbuffer a0=step_table a1=index_table.
const DECODER_ASM: &str = r#"
adpcm_decoder:
    mv   s0, a0
    mv   s1, a1
    mv   s2, a2
    li   s3, 0                # valpred
    li   s4, 0                # index
    la   a0, step_table
    la   a1, index_table
    sll  t0, s4, 2
    add  t0, a0, t0
    lw   s5, 0(t0)
    li   s6, 0                # bufferstep = 0
    li   s7, 0
dec_loop:
    beqz s2, dec_done
    bnez s6, dec_low
    lbu  s7, 0(s0)            # inputbuffer = *inp++
    addi s0, s0, 1
    srl  t0, s7, 4
    andi t0, t0, 0xf          # delta = high nibble
    li   s6, 1
    b    dec_have
dec_low:
    andi t0, s7, 0xf          # delta = low nibble
    li   s6, 0
dec_have:
    sll  t5, t0, 2
    add  t5, a1, t5
    lw   t5, 0(t5)            # indexTable[delta]
    add  s4, s4, t5
    bge  s4, zero, dec_ix2
    li   s4, 0
dec_ix2:
    li   t5, 88
    ble  s4, t5, dec_ix3
    mv   s4, t5
dec_ix3:
    andi t2, t0, 8            # sign
    andi t3, t0, 7            # magnitude
    sra  t4, s5, 3            # vpdiff = step >> 3
    andi t5, t3, 4
    beqz t5, dec_m2
    add  t4, t4, s5
dec_m2:
    andi t5, t3, 2
    beqz t5, dec_m1
    sra  t6, s5, 1
    add  t4, t4, t6
dec_m1:
    andi t5, t3, 1
    beqz t5, dec_sgn
    sra  t6, s5, 2
    add  t4, t4, t6
dec_sgn:
    beqz t2, dec_addp
    sub  s3, s3, t4
    b    dec_clamp
dec_addp:
    add  s3, s3, t4
dec_clamp:
    li   t5, 32767
    ble  s3, t5, dec_cl2
    mv   s3, t5
dec_cl2:
    li   t5, -32768
    bge  s3, t5, dec_cl3
    mv   s3, t5
dec_cl3:
    sll  t5, s4, 2
    add  t5, a0, t5
    lw   s5, 0(t5)            # step = stepTable[index]
    sh   s3, 0(s1)
    addi s1, s1, 2
    subi s2, s2, 1
    b    dec_loop
dec_done:
    ret
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_encoder_matches_reference_shape() {
        // 2 samples per encoded byte, rounded up.
        let input = synth_pcm(101, 1);
        let enc = encode(&input, &mut AdpcmState::default());
        assert_eq!(enc.len(), 51);
    }

    #[test]
    fn golden_roundtrip_tracks_the_signal() {
        // ADPCM is lossy, but the decoded signal must track the input
        // closely for a smooth waveform.
        let input = synth_pcm(512, 7);
        let enc = encode(&input, &mut AdpcmState::default());
        let dec = decode(&enc, 512, &mut AdpcmState::default());
        let mut worst = 0i32;
        // Skip the attack transient at the start.
        for (a, b) in input.iter().zip(&dec).skip(32) {
            worst = worst.max((*a as i32 - *b as i32).abs());
        }
        assert!(worst < 4000, "worst tracking error {worst}");
    }

    #[test]
    fn encoder_state_carries_between_calls() {
        let input = synth_pcm(64, 3);
        let mut st = AdpcmState::default();
        let a = encode(&input[..32], &mut st);
        let b = encode(&input[32..], &mut st);
        assert_eq!(a.len() + b.len(), 32);
        assert_ne!(st, AdpcmState::default());
    }

    #[test]
    fn clamping_extremes() {
        // A violent square wave must stay within i16 and never panic.
        let input: Vec<i16> = (0..64)
            .map(|i| if i % 2 == 0 { 32767 } else { -32768 })
            .collect();
        let enc = encode(&input, &mut AdpcmState::default());
        let dec = decode(&enc, 64, &mut AdpcmState::default());
        assert_eq!(dec.len(), 64);
    }

    #[test]
    fn assembly_program_matches_golden_on_vanilla() {
        workload(200).verify_on_vanilla().unwrap();
    }

    #[test]
    fn odd_sample_count_flushes_final_nibble() {
        workload(33).verify_on_vanilla().unwrap();
    }
}
