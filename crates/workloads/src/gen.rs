//! Deterministic input generation, data-section emission helpers, and a
//! seed-driven random *program* generator for differential testing.

use sofia_crypto::util::SplitMix64;

/// One loop-body operation of a generated program.
#[derive(Clone, Copy, Debug)]
enum GenOp {
    Add,
    Sub,
    Xor,
    And,
    Or,
    Mul,
    Sll(u8),
    Srl(u8),
    /// A conditional branch inside the loop body.
    SkipIfEven,
    /// A store/load round-trip through memory.
    StoreLoad,
}

impl GenOp {
    fn pick(rng: &mut SplitMix64) -> GenOp {
        match rng.next_below(10) {
            0 => GenOp::Add,
            1 => GenOp::Sub,
            2 => GenOp::Xor,
            3 => GenOp::And,
            4 => GenOp::Or,
            5 => GenOp::Mul,
            6 => GenOp::Sll(rng.next_u64() as u8),
            7 => GenOp::Srl(rng.next_u64() as u8),
            8 => GenOp::SkipIfEven,
            _ => GenOp::StoreLoad,
        }
    }
}

/// A deterministic, always-terminating random program: a prologue seeds
/// registers, a bounded loop applies random ALU/branch/memory operations
/// (optionally through a helper call, exercising the mux-tree machinery),
/// and the epilogue emits two registers on the MMIO word port.
///
/// The same seed always yields the same source, so the differential test
/// engine can replay a divergence from nothing but its seed. Programs
/// cover every control-flow shape SOFIA seals: sequential fall-through,
/// conditional branches (taken and not), a backward loop edge, and
/// call/return through a multiplexor block.
///
/// # Examples
///
/// ```
/// let a = sofia_workloads::gen::random_program(7);
/// assert_eq!(a, sofia_workloads::gen::random_program(7));
/// assert_ne!(a, sofia_workloads::gen::random_program(8));
/// assert!(sofia_isa::asm::parse(&a).is_ok());
/// ```
pub fn random_program(seed: u64) -> String {
    let mut rng = SplitMix64::new(seed);
    let seed_a = rng.next_below(10_000);
    let seed_b = rng.next_below(10_000);
    let iterations = 1 + rng.next_below(19);
    let call_helper = rng.next_below(2) == 1;
    let n_ops = 1 + rng.next_below(11) as usize;
    let mut body = String::new();
    for i in 0..n_ops {
        match GenOp::pick(&mut rng) {
            GenOp::Add => body.push_str("    add s0, s0, s1\n"),
            GenOp::Sub => body.push_str("    sub s1, s1, s0\n"),
            GenOp::Xor => body.push_str("    xor s0, s0, s1\n"),
            GenOp::And => body.push_str("    and s1, s1, s0\n    ori s1, s1, 3\n"),
            GenOp::Or => body.push_str("    or s0, s0, s1\n"),
            GenOp::Mul => body.push_str("    mul s0, s0, s1\n    ori s0, s0, 1\n"),
            GenOp::Sll(n) => {
                body.push_str(&format!("    sll s1, s1, {}\n    ori s1, s1, 5\n", n % 8))
            }
            GenOp::Srl(n) => body.push_str(&format!("    srl s0, s0, {}\n", n % 8)),
            GenOp::SkipIfEven => body.push_str(&format!(
                "    andi t0, s0, 1\n    beqz t0, skip_{i}\n    addi s1, s1, 17\nskip_{i}:\n"
            )),
            GenOp::StoreLoad => body.push_str(
                "    la t1, scratch\n    sw s0, 0(t1)\n    lw t2, 0(t1)\n    add s1, s1, t2\n",
            ),
        }
    }
    let helper_call = if call_helper {
        "    mv a0, s0\n    jal mixer\n    mv s0, v0\n"
    } else {
        ""
    };
    format!(
        ".equ OUT, 0xFFFF0000
.text
.global main
main:
    li   s0, {seed_a}
    li   s1, {seed_b}
    li   s2, {iterations}
loop:
    beqz s2, done
{body}{helper_call}    subi s2, s2, 1
    b    loop
done:
    li   t3, OUT
    sw   s0, 0(t3)
    sw   s1, 0(t3)
    halt
mixer:
    xor  v0, a0, a0
    add  v0, v0, a0
    addi v0, v0, 13
    ret

.data
scratch: .space 4
"
    )
}

/// Synthetic PCM: a sum of sines with a pseudo-random walk on top —
/// deterministic stand-in for the MediaBench audio input (DESIGN.md,
/// substitution S4).
pub fn synth_pcm(n: usize, seed: u64) -> Vec<i16> {
    let mut rng = SplitMix64::new(seed);
    let mut noise = 0i32;
    (0..n)
        .map(|i| {
            let t = i as f64;
            let tone = 6000.0 * (t * 0.063).sin() + 2500.0 * (t * 0.211).sin();
            noise += (rng.next_below(401) as i32) - 200;
            noise = noise.clamp(-3000, 3000);
            (tone as i32 + noise).clamp(-32768, 32767) as i16
        })
        .collect()
}

/// Uniform pseudo-random words.
pub fn random_words(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64() as u32).collect()
}

/// Uniform pseudo-random bytes.
pub fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

/// Emits `.half` directives for a slice of signed samples.
pub fn half_directives(samples: &[i16]) -> String {
    let mut out = String::new();
    for chunk in samples.chunks(12) {
        let row: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!("    .half {}\n", row.join(", ")));
    }
    out
}

/// Emits `.word` directives for a slice of words.
pub fn word_directives(words: &[u32]) -> String {
    let mut out = String::new();
    for chunk in words.chunks(8) {
        let row: Vec<String> = chunk.iter().map(|v| format!("{v:#x}")).collect();
        out.push_str(&format!("    .word {}\n", row.join(", ")));
    }
    out
}

/// Emits `.byte` directives for a slice of bytes.
pub fn byte_directives(bytes: &[u8]) -> String {
    let mut out = String::new();
    for chunk in bytes.chunks(16) {
        let row: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!("    .byte {}\n", row.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_is_deterministic_and_bounded() {
        let a = synth_pcm(256, 9);
        let b = synth_pcm(256, 9);
        assert_eq!(a, b);
        assert_ne!(a, synth_pcm(256, 10));
        // A real waveform: both polarities present.
        assert!(a.iter().any(|&s| s > 1000));
        assert!(a.iter().any(|&s| s < -1000));
    }

    #[test]
    fn random_programs_assemble_and_terminate() {
        for seed in 0..8 {
            let src = random_program(seed);
            let asmb =
                sofia_isa::asm::assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            let mut m = sofia_cpu::machine::VanillaMachine::new(&asmb);
            let outcome = m
                .run(5_000_000)
                .unwrap_or_else(|t| panic!("seed {seed}: {t}"));
            assert!(outcome.is_halted(), "seed {seed} did not halt");
            assert_eq!(m.mem().mmio.out_words.len(), 2, "seed {seed}");
        }
    }

    #[test]
    fn directive_emission_parses() {
        let src = format!(
            ".data\nx:\n{}\ny:\n{}\nz:\n{}\n.text\nmain: halt",
            half_directives(&[-1, 0, 32767]),
            word_directives(&[0xDEAD_BEEF, 7]),
            byte_directives(&[0, 255, 128]),
        );
        let asmb = sofia_isa::asm::assemble(&src).unwrap();
        assert_eq!(&asmb.data[0..2], &(-1i16).to_le_bytes());
    }
}
