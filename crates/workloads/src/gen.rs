//! Deterministic input generation and data-section emission helpers.

use sofia_crypto::util::SplitMix64;

/// Synthetic PCM: a sum of sines with a pseudo-random walk on top —
/// deterministic stand-in for the MediaBench audio input (DESIGN.md,
/// substitution S4).
pub fn synth_pcm(n: usize, seed: u64) -> Vec<i16> {
    let mut rng = SplitMix64::new(seed);
    let mut noise = 0i32;
    (0..n)
        .map(|i| {
            let t = i as f64;
            let tone = 6000.0 * (t * 0.063).sin() + 2500.0 * (t * 0.211).sin();
            noise += (rng.next_below(401) as i32) - 200;
            noise = noise.clamp(-3000, 3000);
            (tone as i32 + noise).clamp(-32768, 32767) as i16
        })
        .collect()
}

/// Uniform pseudo-random words.
pub fn random_words(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64() as u32).collect()
}

/// Uniform pseudo-random bytes.
pub fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64() as u8).collect()
}

/// Emits `.half` directives for a slice of signed samples.
pub fn half_directives(samples: &[i16]) -> String {
    let mut out = String::new();
    for chunk in samples.chunks(12) {
        let row: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!("    .half {}\n", row.join(", ")));
    }
    out
}

/// Emits `.word` directives for a slice of words.
pub fn word_directives(words: &[u32]) -> String {
    let mut out = String::new();
    for chunk in words.chunks(8) {
        let row: Vec<String> = chunk.iter().map(|v| format!("{v:#x}")).collect();
        out.push_str(&format!("    .word {}\n", row.join(", ")));
    }
    out
}

/// Emits `.byte` directives for a slice of bytes.
pub fn byte_directives(bytes: &[u8]) -> String {
    let mut out = String::new();
    for chunk in bytes.chunks(16) {
        let row: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!("    .byte {}\n", row.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_is_deterministic_and_bounded() {
        let a = synth_pcm(256, 9);
        let b = synth_pcm(256, 9);
        assert_eq!(a, b);
        assert_ne!(a, synth_pcm(256, 10));
        // A real waveform: both polarities present.
        assert!(a.iter().any(|&s| s > 1000));
        assert!(a.iter().any(|&s| s < -1000));
    }

    #[test]
    fn directive_emission_parses() {
        let src = format!(
            ".data\nx:\n{}\ny:\n{}\nz:\n{}\n.text\nmain: halt",
            half_directives(&[-1, 0, 32767]),
            word_directives(&[0xDEAD_BEEF, 7]),
            byte_directives(&[0, 255, 128]),
        );
        let asmb = sofia_isa::asm::assemble(&src).unwrap();
        assert_eq!(&asmb.data[0..2], &(-1i16).to_le_bytes());
    }
}
