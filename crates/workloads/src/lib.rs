//! # sofia-workloads — benchmark programs with golden models
//!
//! The software side of the paper's evaluation (§IV-B): the MediaBench
//! **IMA ADPCM** codec in hand-written SL32 assembly ([`adpcm`]), plus a
//! suite of embedded kernels ([`kernels`]) that extend the evaluation
//! beyond the paper's single benchmark.
//!
//! Every [`Workload`] couples an assembly program with the outputs a
//! bit-exact golden Rust model predicts, so correctness of the entire
//! stack (assembler → transformer → SOFIA machine) is checked end to end:
//! the program emits checksums on the MMIO word port and the harness
//! compares them.
//!
//! # Examples
//!
//! ```
//! use sofia_crypto::KeySet;
//!
//! let w = sofia_workloads::kernels::fib(20);
//! let vanilla = w.verify_on_vanilla()?;
//! let (sofia, report) = w.verify_on_sofia(&KeySet::from_seed(1))?;
//! assert!(sofia.exec.cycles > vanilla.cycles); // protection costs cycles
//! assert!(report.expansion() > 1.3); // and code size
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adpcm;
pub mod gen;
pub mod kernels;

use sofia_core::machine::SofiaMachine;
use sofia_core::SofiaStats;
use sofia_cpu::machine::VanillaMachine;
use sofia_cpu::ExecStats;
use sofia_crypto::KeySet;
use sofia_isa::asm::{self, Assembly, Module};
use sofia_transform::{SecureImage, TransformReport, Transformer};

/// Execution fuel for workload verification runs.
const FUEL: u64 = 200_000_000;

/// An assembly program paired with its golden-model expected output.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short identifier (`adpcm`, `crc32`, …).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: &'static str,
    /// SL32 assembly source.
    pub source: String,
    /// Words the program must emit on the MMIO word port.
    pub expected: Vec<u32>,
}

impl Workload {
    /// Parses the workload into a symbolic module.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source does not parse — a workload bug.
    pub fn module(&self) -> Module {
        asm::parse(&self.source).expect("workload source parses")
    }

    /// Assembles the workload for the vanilla machine.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source does not assemble — a workload bug.
    pub fn assembly(&self) -> Assembly {
        asm::assemble(&self.source).expect("workload source assembles")
    }

    /// Securely installs the workload for a SOFIA machine.
    ///
    /// # Panics
    ///
    /// Panics if the transformer rejects the workload — a workload bug.
    pub fn secure_image(&self, keys: &KeySet) -> SecureImage {
        Transformer::new(keys.clone())
            .transform(&self.module())
            .expect("workload transforms")
    }

    /// Runs on the vanilla machine and checks the output against the
    /// golden model.
    ///
    /// # Errors
    ///
    /// Returns a description of any trap, non-termination, or output
    /// mismatch.
    pub fn verify_on_vanilla(&self) -> Result<ExecStats, String> {
        let mut m = VanillaMachine::new(&self.assembly());
        let outcome = m
            .run(FUEL)
            .map_err(|t| format!("{}: trap: {t}", self.name))?;
        if !outcome.is_halted() {
            return Err(format!("{}: did not halt", self.name));
        }
        if m.mem().mmio.out_words != self.expected {
            return Err(format!(
                "{}: output {:x?} != expected {:x?}",
                self.name,
                m.mem().mmio.out_words,
                self.expected
            ));
        }
        Ok(m.stats())
    }

    /// Transforms, runs on the SOFIA machine, and checks the output
    /// against the golden model.
    ///
    /// # Errors
    ///
    /// Returns a description of any violation, trap, non-termination, or
    /// output mismatch.
    pub fn verify_on_sofia(&self, keys: &KeySet) -> Result<(SofiaStats, TransformReport), String> {
        let image = self.secure_image(keys);
        let report = image.report.clone();
        let mut m = SofiaMachine::new(&image, keys);
        let outcome = m
            .run(FUEL)
            .map_err(|t| format!("{}: trap: {t}", self.name))?;
        if !outcome.is_halted() {
            return Err(format!("{}: outcome {outcome:?}", self.name));
        }
        if m.mem().mmio.out_words != self.expected {
            return Err(format!(
                "{}: output {:x?} != expected {:x?}",
                self.name,
                m.mem().mmio.out_words,
                self.expected
            ));
        }
        Ok((m.stats(), report))
    }
}

/// Problem sizes for the workload suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for unit/integration tests.
    Test,
    /// The sizes used by the reproduction benches.
    Bench,
}

/// The full workload suite at a given scale (ADPCM first — the paper's
/// benchmark — then the extension kernels).
pub fn suite(scale: Scale) -> Vec<Workload> {
    match scale {
        Scale::Test => vec![
            adpcm::workload(200),
            kernels::fib(30),
            kernels::crc32(96),
            kernels::bubble_sort(32),
            kernels::fir(48),
            kernels::matmul(),
            kernels::memcpy(97),
            kernels::dispatch(64),
            kernels::quicksort(48),
            kernels::strsearch(220),
        ],
        Scale::Bench => vec![
            adpcm::workload(4000),
            kernels::fib(100_000),
            kernels::crc32(4096),
            kernels::bubble_sort(256),
            kernels::fir(2048),
            kernels::matmul(),
            kernels::memcpy(8192),
            kernels::dispatch(20_000),
            kernels::quicksort(2000),
            kernels::strsearch(4096),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique() {
        let names: Vec<_> = suite(Scale::Test).iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn whole_test_suite_verifies_on_vanilla() {
        for w in suite(Scale::Test) {
            w.verify_on_vanilla()
                .unwrap_or_else(|e| panic!("vanilla {e}"));
        }
    }

    #[test]
    fn whole_test_suite_verifies_on_sofia() {
        let keys = KeySet::from_seed(0xD15C);
        for w in suite(Scale::Test) {
            w.verify_on_sofia(&keys)
                .unwrap_or_else(|e| panic!("sofia {e}"));
        }
    }

    #[test]
    fn adpcm_text_size_expansion_matches_paper_ballpark() {
        // Paper §IV-B: 6,976 B → 16,816 B, a 2.41× expansion. Our
        // transformer lands in the same regime, somewhat higher (≈3.4×)
        // because hand-written assembly has shorter basic blocks than the
        // paper's compiler output, costing more last-slot padding; the
        // delta is analysed in EXPERIMENTS.md.
        let keys = KeySet::from_seed(1);
        let img = adpcm::workload(200).secure_image(&keys);
        let e = img.report.expansion();
        assert!((1.8..4.0).contains(&e), "expansion {e}");
    }
}
