//! The bitsliced ≡ scalar equivalence suite: the scalar RECTANGLE path
//! is the reference oracle, and every bulk API — block encrypt/decrypt,
//! batched CTR keystream, lane-parallel CBC-MAC — must reproduce it bit
//! for bit over random keys, random blocks and every lane-count shape
//! (empty, sub-lane, exactly one pass, ragged multi-pass tails), at
//! **every supported lane width** (16/32/64): the width is a host-perf
//! knob, never a semantic one, so each width must match the oracle and
//! all widths must match each other.

use proptest::prelude::*;
use sofia_crypto::{ctr, mac, CounterBlock, Key80, KeySet, LaneWidth, Nonce, Rectangle};

fn any_width() -> impl Strategy<Value = LaneWidth> {
    (0usize..LaneWidth::ALL.len()).prop_map(|i| LaneWidth::ALL[i])
}

proptest! {
    /// Batch encryption over any lane count matches per-block scalar
    /// encryption, including the zero-padded ragged final pass.
    #[test]
    fn encrypt_blocks_matches_scalar(
        key in any::<u64>(),
        blocks in proptest::collection::vec(any::<u64>(), 0..70),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let expect: Vec<u64> = blocks.iter().map(|&b| cipher.encrypt_block(b)).collect();
        let mut got = blocks.clone();
        cipher.encrypt_blocks(&mut got);
        prop_assert_eq!(got, expect);
    }

    /// Batch decryption matches per-block scalar decryption and inverts
    /// batch encryption.
    #[test]
    fn decrypt_blocks_matches_scalar(
        key in any::<u64>(),
        blocks in proptest::collection::vec(any::<u64>(), 0..70),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let expect: Vec<u64> = blocks.iter().map(|&b| cipher.decrypt_block(b)).collect();
        let mut got = blocks.clone();
        cipher.decrypt_blocks(&mut got);
        prop_assert_eq!(&got, &expect);
        cipher.encrypt_blocks(&mut got);
        prop_assert_eq!(got, blocks);
    }

    /// The batched CTR keystream equals the per-counter scalar pads, for
    /// any batch shape of valid control-flow edges.
    #[test]
    fn ctr_keystream_matches_scalar(
        key in any::<u64>(),
        nonce in any::<u16>(),
        edges in proptest::collection::vec((0u32..1 << 24, 0u32..1 << 24), 0..60),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let counters: Vec<CounterBlock> = edges
            .iter()
            .map(|&(prev, pc)| CounterBlock::from_edge(Nonce::new(nonce), prev << 2, pc << 2))
            .collect();
        let expect: Vec<u32> = counters.iter().map(|&c| ctr::pad(&cipher, c)).collect();
        prop_assert_eq!(ctr::pads(&cipher, &counters), expect);
    }

    /// `apply_batch` is the batched involution of scalar `apply`.
    #[test]
    fn ctr_apply_batch_roundtrips(
        key in any::<u64>(),
        edges in proptest::collection::vec(
            ((0u32..1 << 24, 0u32..1 << 24), any::<u32>()), 0..40),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let counters: Vec<CounterBlock> = edges
            .iter()
            .map(|&((prev, pc), _)| CounterBlock::from_edge(Nonce::new(3), prev << 2, pc << 2))
            .collect();
        let plain: Vec<u32> = edges.iter().map(|&(_, w)| w).collect();
        let mut words = plain.clone();
        ctr::apply_batch(&cipher, &counters, &mut words);
        for ((&c, &w), &p) in counters.iter().zip(&words).zip(&plain) {
            prop_assert_eq!(w, ctr::apply(&cipher, c, p));
        }
        ctr::apply_batch(&cipher, &counters, &mut words);
        prop_assert_eq!(words, plain);
    }

    /// Lane-parallel CBC-MAC over independent messages matches the
    /// scalar MAC per message — across message counts (including ragged
    /// final cipher passes), message lengths and padded domains.
    #[test]
    fn cbc_mac_batch_matches_scalar(
        key in any::<u64>(),
        padded_pairs in 1usize..6,
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..10), 0..40),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let padded_words = padded_pairs * 2;
        let msgs: Vec<Vec<u32>> = messages
            .into_iter()
            .map(|mut m| {
                m.truncate(padded_words);
                m
            })
            .collect();
        let slices: Vec<&[u32]> = msgs.iter().map(|m| m.as_slice()).collect();
        let expect: Vec<_> = slices
            .iter()
            .map(|m| mac::mac_words(&cipher, m, padded_words))
            .collect();
        prop_assert_eq!(mac::mac_words_batch(&cipher, &slices, padded_words), expect);
    }

    /// Width sweep: batch encryption at every lane width matches the
    /// scalar oracle, including ragged final passes, and decryption at a
    /// *different* random width inverts it — so 16/32/64-lane outputs
    /// are mutually bit-identical, not just oracle-identical.
    #[test]
    fn encrypt_blocks_matches_scalar_at_every_width(
        key in any::<u64>(),
        blocks in proptest::collection::vec(any::<u64>(), 0..150),
        inverse_width in any_width(),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let expect: Vec<u64> = blocks.iter().map(|&b| cipher.encrypt_block(b)).collect();
        for width in LaneWidth::ALL {
            let mut got = blocks.clone();
            cipher.encrypt_blocks_with(&mut got, width);
            prop_assert_eq!(&got, &expect);
            cipher.decrypt_blocks_with(&mut got, inverse_width);
            prop_assert_eq!(&got, &blocks);
        }
    }

    /// Width sweep for decryption against the scalar oracle.
    #[test]
    fn decrypt_blocks_matches_scalar_at_every_width(
        key in any::<u64>(),
        blocks in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let expect: Vec<u64> = blocks.iter().map(|&b| cipher.decrypt_block(b)).collect();
        for width in LaneWidth::ALL {
            let mut got = blocks.clone();
            cipher.decrypt_blocks_with(&mut got, width);
            prop_assert_eq!(&got, &expect);
        }
    }

    /// The CTR keystream is width-invariant and oracle-exact: the same
    /// pads fall out of every lane width.
    #[test]
    fn ctr_keystream_matches_scalar_at_every_width(
        key in any::<u64>(),
        nonce in any::<u16>(),
        edges in proptest::collection::vec((0u32..1 << 24, 0u32..1 << 24), 0..100),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let counters: Vec<CounterBlock> = edges
            .iter()
            .map(|&(prev, pc)| CounterBlock::from_edge(Nonce::new(nonce), prev << 2, pc << 2))
            .collect();
        let expect: Vec<u32> = counters.iter().map(|&c| ctr::pad(&cipher, c)).collect();
        for width in LaneWidth::ALL {
            prop_assert_eq!(ctr::pads_with(&cipher, &counters, width), expect.clone());
        }
    }

    /// `apply_batch` round-trips across *mixed* widths: words encrypted
    /// at one width decrypt at any other (XOR with identical pads).
    #[test]
    fn ctr_apply_batch_roundtrips_across_widths(
        key in any::<u64>(),
        enc_width in any_width(),
        dec_width in any_width(),
        edges in proptest::collection::vec(
            ((0u32..1 << 24, 0u32..1 << 24), any::<u32>()), 0..60),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let counters: Vec<CounterBlock> = edges
            .iter()
            .map(|&((prev, pc), _)| CounterBlock::from_edge(Nonce::new(5), prev << 2, pc << 2))
            .collect();
        let plain: Vec<u32> = edges.iter().map(|&(_, w)| w).collect();
        let mut words = plain.clone();
        ctr::apply_batch_with(&cipher, &counters, &mut words, enc_width);
        ctr::apply_batch_with(&cipher, &counters, &mut words, dec_width);
        prop_assert_eq!(words, plain);
    }

    /// Lane-parallel CBC-MAC is width-invariant and oracle-exact.
    #[test]
    fn cbc_mac_batch_matches_scalar_at_every_width(
        key in any::<u64>(),
        padded_pairs in 1usize..6,
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..10), 0..70),
    ) {
        let cipher = Rectangle::new(&Key80::from_seed(key));
        let padded_words = padded_pairs * 2;
        let msgs: Vec<Vec<u32>> = messages
            .into_iter()
            .map(|mut m| {
                m.truncate(padded_words);
                m
            })
            .collect();
        let slices: Vec<&[u32]> = msgs.iter().map(|m| m.as_slice()).collect();
        let expect: Vec<_> = slices
            .iter()
            .map(|m| mac::mac_words(&cipher, m, padded_words))
            .collect();
        for width in LaneWidth::ALL {
            prop_assert_eq!(
                mac::mac_words_batch_with(&cipher, &slices, padded_words, width),
                expect.clone()
            );
        }
    }
}

/// The ISSUE's cross-width framing, pinned directly: a 32-lane pass over
/// 32 blocks equals two 16-lane passes over the halves (and the 64-lane
/// pass equals all four quarters) — lane independence means width only
/// changes how many blocks share a sweep, never any block's value.
#[test]
fn wider_pass_equals_stacked_narrow_passes() {
    let cipher = Rectangle::new(&Key80::from_seed(0x57AC));
    let blocks: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut narrow = blocks.clone();
    for half in narrow.chunks_mut(16) {
        cipher.encrypt_blocks_with(half, LaneWidth::W16);
    }
    let mut mid = blocks.clone();
    for half in mid.chunks_mut(32) {
        cipher.encrypt_blocks_with(half, LaneWidth::W32);
    }
    let mut wide = blocks.clone();
    cipher.encrypt_blocks_with(&mut wide, LaneWidth::W64);
    assert_eq!(mid, narrow, "one 32-lane pass == two 16-lane passes");
    assert_eq!(wide, narrow, "one 64-lane pass == four 16-lane passes");
}

/// The keyset-level sanity check: all three expanded ciphers drive the
/// batch APIs identically to their scalar selves (exactly the shapes the
/// sealer uses: k1 for keystream, k2/k3 for MACs).
#[test]
fn expanded_keyset_batches_match_scalar() {
    let keys = KeySet::from_seed(0xE0).expand();
    let words: Vec<u32> = (0..6).collect();
    assert_eq!(
        mac::mac_words_batch(&keys.mac_exec, &[&words], 6),
        vec![mac::mac_words(&keys.mac_exec, &words, 6)]
    );
    assert_eq!(
        mac::mac_words_batch(&keys.mac_mux, &[&words[..5]], 6),
        vec![mac::mac_words(&keys.mac_mux, &words[..5], 6)]
    );
    let counters: Vec<CounterBlock> = (0..17)
        .map(|i| CounterBlock::from_edge(Nonce::new(1), i * 4, (i + 1) * 4))
        .collect();
    let expect: Vec<u32> = counters.iter().map(|&c| ctr::pad(&keys.ctr, c)).collect();
    assert_eq!(ctr::pads(&keys.ctr, &counters), expect);
}
