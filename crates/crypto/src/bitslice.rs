//! The bitsliced RECTANGLE engine: many independent 64-bit blocks per
//! pass, pure ALU work, no tables, lane-width generic.
//!
//! RECTANGLE was designed for exactly this ("a bit-slice lightweight
//! block cipher", Zhang et al. 2014): the S-box layer applies the same
//! 4-bit boolean function to all 16 columns of the 4×16 state, so it can
//! be evaluated *bitwise* across a whole row at once, and across many
//! blocks at once if rows of independent blocks share a machine word.
//!
//! # Layout
//!
//! One `u64` **row word** carries row `r` of [`LANES_PER_WORD`] = 4
//! blocks side by side, each in its own 16-bit sub-lane. A **group** is
//! the four row words of those 4 blocks, and a pass works on a register
//! file of `G` groups — `4·G` independent blocks ciphered together:
//!
//! * **AddRoundKey** — XOR each row word with the 16-bit round-key row
//!   replicated into every sub-lane;
//! * **SubColumn** — the S-box as a bitwise boolean circuit over the four
//!   row words (derived from the algebraic normal form of the S-box and
//!   pinned against the lookup table by test);
//! * **ShiftRow** — a per-sub-lane 16-bit rotation by 0/1/12/13.
//!
//! The S-box circuit and the sub-lane rotations never look across row
//! words, so nothing in the round ties `G` down — the pass is generic
//! over the group count ([`LaneWidth`]: 16, 32 or 64 lanes per pass,
//! still portable `u64` ops, no intrinsics). More groups in flight means
//! more independent ALU work per round for the out-of-order core to
//! overlap, until register pressure spills the state; which width wins
//! is an empirical question the `host` bench answers per box, and
//! [`LaneWidth::default`] records the measured winner.
//!
//! The scalar [`Rectangle::encrypt_block`] path stays as the reference
//! oracle; `tests/bitslice_equiv.rs` pins every width to it over random
//! keys, blocks and lane counts, and widths to each other.

use crate::rectangle::{Rectangle, ROUNDS};

/// Independent blocks carried by one `u64` row word (16-bit sub-lanes).
pub const LANES_PER_WORD: usize = 4;

/// How many independent blocks one bitsliced pass ciphers.
///
/// Purely a host-performance knob: every width produces bit-identical
/// output (lane independence — pinned by the equivalence suite), so the
/// choice never leaks into keystream, MACs or sealed images.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LaneWidth {
    /// 16 blocks per pass (4 row-word groups) — the narrowest slice that
    /// fills every 16-bit sub-lane of a `u64` row word.
    W16,
    /// 32 blocks per pass (8 groups) — the measured default: twice the
    /// independent work per round for the out-of-order core to overlap,
    /// before 64 lanes' register pressure starts spilling.
    #[default]
    W32,
    /// 64 blocks per pass (16 groups).
    W64,
}

impl LaneWidth {
    /// Every supported width, narrowest first.
    pub const ALL: [LaneWidth; 3] = [LaneWidth::W16, LaneWidth::W32, LaneWidth::W64];

    /// Independent 64-bit blocks ciphered per pass at this width.
    pub const fn lanes(self) -> usize {
        match self {
            LaneWidth::W16 => 16,
            LaneWidth::W32 => 32,
            LaneWidth::W64 => 64,
        }
    }
}

impl std::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} lanes", self.lanes())
    }
}

/// Replication mask: one copy of a 16-bit row per sub-lane.
const LANE1: u64 = 0x0001_0001_0001_0001;

/// Rotates each 16-bit sub-lane of `x` left by `k` (1 ≤ k < 16).
#[inline(always)]
fn rotl16(x: u64, k: u32) -> u64 {
    let hi = ((0xFFFFu64 << k) & 0xFFFF) * LANE1;
    let lo = (0xFFFF >> (16 - k)) * LANE1;
    ((x << k) & hi) | ((x >> (16 - k)) & lo)
}

/// The RECTANGLE S-box as a bitwise boolean circuit (ANF of
/// [`crate::SBOX`]): inputs/outputs are row words, bit-position-wise.
#[inline(always)]
fn sub_column(x0: u64, x1: u64, x2: u64, x3: u64) -> (u64, u64, u64, u64) {
    let t01 = x0 & x1;
    let t02 = x0 & x2;
    let t12 = x1 & x2;
    let y0 = x0 ^ t01 ^ x2 ^ x3;
    let y1 = !(x0 ^ x1 ^ x2 ^ (x1 & x3));
    let y2 = !(t01 ^ x2 ^ t02 ^ t12 ^ (t01 & x2) ^ x3 ^ (x2 & x3));
    let y3 = x1 ^ t02 ^ t12 ^ x3 ^ (x0 & x3) ^ (t12 & x3);
    (y0, y1, y2, y3)
}

/// The inverse S-box circuit (ANF of [`crate::SBOX_INV`]).
#[inline(always)]
fn sub_column_inv(x0: u64, x1: u64, x2: u64, x3: u64) -> (u64, u64, u64, u64) {
    let t01 = x0 & x1;
    let t13 = x1 & x3;
    let t23 = x2 & x3;
    let y0 = !(x0 ^ x2 ^ (t01 & x2) ^ x3 ^ t13 ^ t23);
    let y1 = x1 ^ x2 ^ (x0 & x2) ^ (x0 & x3);
    let y2 = x0 ^ x1 ^ x2 ^ x3 ^ (x0 & x3);
    let y3 = !(x0 ^ t01 ^ (x1 & x2) ^ t13 ^ (t01 & x3) ^ t23);
    (y0, y1, y2, y3)
}

/// Broadcasts one round key's four 16-bit rows into full row words.
#[inline(always)]
fn broadcast(rk: &[u16; 4]) -> [u64; 4] {
    [
        rk[0] as u64 * LANE1,
        rk[1] as u64 * LANE1,
        rk[2] as u64 * LANE1,
        rk[3] as u64 * LANE1,
    ]
}

/// Packs `4·G` blocks into `G` groups of row words.
#[inline]
fn pack<const G: usize>(blocks: &[u64]) -> [[u64; 4]; G] {
    debug_assert_eq!(blocks.len(), LANES_PER_WORD * G);
    let mut st = [[0u64; 4]; G];
    for g in 0..G {
        for l in 0..LANES_PER_WORD {
            let b = blocks[g * LANES_PER_WORD + l];
            let shift = 16 * l;
            st[g][0] |= (b & 0xFFFF) << shift;
            st[g][1] |= ((b >> 16) & 0xFFFF) << shift;
            st[g][2] |= ((b >> 32) & 0xFFFF) << shift;
            st[g][3] |= (b >> 48) << shift;
        }
    }
    st
}

/// Inverse of [`pack`].
#[inline]
fn unpack<const G: usize>(st: &[[u64; 4]; G], blocks: &mut [u64]) {
    debug_assert_eq!(blocks.len(), LANES_PER_WORD * G);
    for g in 0..G {
        for l in 0..LANES_PER_WORD {
            let shift = 16 * l;
            blocks[g * LANES_PER_WORD + l] = ((st[g][0] >> shift) & 0xFFFF)
                | (((st[g][1] >> shift) & 0xFFFF) << 16)
                | (((st[g][2] >> shift) & 0xFFFF) << 32)
                | (((st[g][3] >> shift) & 0xFFFF) << 48);
        }
    }
}

/// Encrypts one full pass of `4·G` blocks in place.
fn encrypt_pass<const G: usize>(cipher: &Rectangle, blocks: &mut [u64]) {
    let mut st = pack::<G>(blocks);
    for rk in &cipher.round_keys[..ROUNDS] {
        let k = broadcast(rk);
        for s in &mut st {
            let (y0, y1, y2, y3) = sub_column(s[0] ^ k[0], s[1] ^ k[1], s[2] ^ k[2], s[3] ^ k[3]);
            s[0] = y0;
            s[1] = rotl16(y1, 1);
            s[2] = rotl16(y2, 12);
            s[3] = rotl16(y3, 13);
        }
    }
    let k = broadcast(&cipher.round_keys[ROUNDS]);
    for s in &mut st {
        for (r, kr) in s.iter_mut().zip(&k) {
            *r ^= kr;
        }
    }
    unpack(&st, blocks);
}

/// Decrypts one full pass of `4·G` blocks in place.
fn decrypt_pass<const G: usize>(cipher: &Rectangle, blocks: &mut [u64]) {
    let mut st = pack::<G>(blocks);
    let k = broadcast(&cipher.round_keys[ROUNDS]);
    for s in &mut st {
        for (r, kr) in s.iter_mut().zip(&k) {
            *r ^= kr;
        }
    }
    for rk in cipher.round_keys[..ROUNDS].iter().rev() {
        let k = broadcast(rk);
        for s in &mut st {
            let (y0, y1, y2, y3) =
                sub_column_inv(s[0], rotl16(s[1], 15), rotl16(s[2], 4), rotl16(s[3], 3));
            s[0] = y0 ^ k[0];
            s[1] = y1 ^ k[1];
            s[2] = y2 ^ k[2];
            s[3] = y3 ^ k[3];
        }
    }
    unpack(&st, blocks);
}

/// Runs `pass` over `blocks` in chunks of `4·G` lanes, zero-padding the
/// final ragged chunk (padding lanes are ciphered and discarded — lane
/// independence makes the real lanes bit-identical to full passes, and
/// to every other width's).
fn drive<const G: usize>(cipher: &Rectangle, blocks: &mut [u64], pass: fn(&Rectangle, &mut [u64])) {
    let lanes = LANES_PER_WORD * G;
    let mut chunks = blocks.chunks_exact_mut(lanes);
    for chunk in &mut chunks {
        pass(cipher, chunk);
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let mut buf = [0u64; 64];
        buf[..rem.len()].copy_from_slice(rem);
        pass(cipher, &mut buf[..lanes]);
        rem.copy_from_slice(&buf[..rem.len()]);
    }
}

pub(crate) fn encrypt_blocks(cipher: &Rectangle, blocks: &mut [u64], width: LaneWidth) {
    match width {
        LaneWidth::W16 => drive::<4>(cipher, blocks, encrypt_pass::<4>),
        LaneWidth::W32 => drive::<8>(cipher, blocks, encrypt_pass::<8>),
        LaneWidth::W64 => drive::<16>(cipher, blocks, encrypt_pass::<16>),
    }
}

pub(crate) fn decrypt_blocks(cipher: &Rectangle, blocks: &mut [u64], width: LaneWidth) {
    match width {
        LaneWidth::W16 => drive::<4>(cipher, blocks, decrypt_pass::<4>),
        LaneWidth::W32 => drive::<8>(cipher, blocks, decrypt_pass::<8>),
        LaneWidth::W64 => drive::<16>(cipher, blocks, decrypt_pass::<16>),
    }
}

#[cfg(test)]
mod tests {
    use super::LaneWidth;
    use crate::{Key80, Rectangle, SBOX, SBOX_INV};

    /// The boolean circuits agree with the lookup tables on every input,
    /// in every sub-lane position.
    #[test]
    fn circuits_match_sbox_tables() {
        for v in 0..16u64 {
            // Place input nibble `v` at several bit positions at once.
            let spread = |bit: u64| {
                let b = bit & 1;
                b | (b << 7) | (b << 16) | (b << 37) | (b << 63)
            };
            let x: Vec<u64> = (0..4).map(|r| spread(v >> r)).collect();
            let (y0, y1, y2, y3) = super::sub_column(x[0], x[1], x[2], x[3]);
            let (i0, i1, i2, i3) = super::sub_column_inv(x[0], x[1], x[2], x[3]);
            for pos in [0, 7, 16, 37, 63] {
                let out = ((y0 >> pos) & 1)
                    | (((y1 >> pos) & 1) << 1)
                    | (((y2 >> pos) & 1) << 2)
                    | (((y3 >> pos) & 1) << 3);
                assert_eq!(out as u8, SBOX[v as usize], "fwd input {v} pos {pos}");
                let inv = ((i0 >> pos) & 1)
                    | (((i1 >> pos) & 1) << 1)
                    | (((i2 >> pos) & 1) << 2)
                    | (((i3 >> pos) & 1) << 3);
                assert_eq!(inv as u8, SBOX_INV[v as usize], "inv input {v} pos {pos}");
            }
        }
    }

    #[test]
    fn rotl16_rotates_each_lane_independently() {
        let x = 0x8001_4002_2004_1008u64;
        let rot = super::rotl16(x, 1);
        for lane in 0..4 {
            let orig = ((x >> (16 * lane)) & 0xFFFF) as u16;
            let got = ((rot >> (16 * lane)) & 0xFFFF) as u16;
            assert_eq!(got, orig.rotate_left(1), "lane {lane}");
        }
    }

    #[test]
    fn full_pass_matches_scalar_on_all_lanes_at_every_width() {
        let cipher = Rectangle::new(&Key80::from_seed(0xB175));
        let mut x = crate::util::SplitMix64::new(3);
        for width in LaneWidth::ALL {
            let blocks: Vec<u64> = (0..width.lanes()).map(|_| x.next_u64()).collect();
            let expect: Vec<u64> = blocks.iter().map(|&b| cipher.encrypt_block(b)).collect();
            let mut enc = blocks.clone();
            super::encrypt_blocks(&cipher, &mut enc, width);
            assert_eq!(enc, expect, "{width}");
            let mut dec = enc;
            super::decrypt_blocks(&cipher, &mut dec, width);
            assert_eq!(dec, blocks, "{width}");
        }
    }

    #[test]
    fn ragged_batches_match_scalar_at_every_width() {
        let cipher = Rectangle::new(&Key80::from_seed(0x7A11));
        let mut x = crate::util::SplitMix64::new(9);
        for width in LaneWidth::ALL {
            for n in [0usize, 1, 3, 4, 15, 16, 17, 31, 33, 63, 65, 100] {
                let blocks: Vec<u64> = (0..n).map(|_| x.next_u64()).collect();
                let expect: Vec<u64> = blocks.iter().map(|&b| cipher.encrypt_block(b)).collect();
                let mut got = blocks.clone();
                super::encrypt_blocks(&cipher, &mut got, width);
                assert_eq!(got, expect, "{width}, batch of {n}");
                super::decrypt_blocks(&cipher, &mut got, width);
                assert_eq!(got, blocks, "{width}, roundtrip of {n}");
            }
        }
    }
}
