//! Control-flow-bound CTR-mode encryption (Algorithm 1 of the paper).
//!
//! Each 32-bit word of the program is XORed with a 32-bit pad derived from
//! `E_k1(I)`, where the counter `I = {ω ‖ prevPC ‖ PC}` encodes the
//! control-flow *edge* that legitimately reaches the word. Taking an edge
//! absent from the static CFG therefore decrypts the destination word with
//! the wrong counter, producing noise — the core of SOFIA's CFI mechanism.

use crate::{LaneWidth, Nonce, Rectangle};

/// Number of address bits kept per program counter inside a counter block.
///
/// Word addresses are used, so 24 bits cover 64 MiB of text.
pub const PC_BITS: u32 = 24;

/// A 64-bit CTR counter block `{ω(16) ‖ prevPC(24) ‖ PC(24)}`.
///
/// `prevPC`/`PC` are stored as *word* addresses (byte address ÷ 4).
///
/// # Examples
///
/// ```
/// use sofia_crypto::{CounterBlock, Nonce};
///
/// let i = CounterBlock::from_edge(Nonce::new(7), 0x100, 0x104);
/// assert_eq!(i.nonce(), Nonce::new(7));
/// assert_eq!(i.prev_pc(), 0x100);
/// assert_eq!(i.pc(), 0x104);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CounterBlock(u64);

impl CounterBlock {
    /// Builds a counter from a control-flow edge given as *byte* addresses.
    ///
    /// # Panics
    ///
    /// Panics if either address is not word-aligned or exceeds the 24-bit
    /// word-address space (≥ 64 MiB). The transformer validates program
    /// layout long before this can trigger at run time.
    pub fn from_edge(nonce: Nonce, prev_pc: u32, pc: u32) -> CounterBlock {
        assert!(prev_pc % 4 == 0 && pc % 4 == 0, "unaligned PC in counter");
        let prev_w = prev_pc >> 2;
        let pc_w = pc >> 2;
        assert!(
            prev_w < (1 << PC_BITS) && pc_w < (1 << PC_BITS),
            "PC outside 24-bit word-address space"
        );
        CounterBlock(((nonce.value() as u64) << 48) | ((prev_w as u64) << PC_BITS) | pc_w as u64)
    }

    /// The raw 64-bit counter value fed to the block cipher.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The nonce field ω.
    pub const fn nonce(self) -> Nonce {
        Nonce::new((self.0 >> 48) as u16)
    }

    /// The previous program counter as a byte address.
    pub const fn prev_pc(self) -> u32 {
        (((self.0 >> PC_BITS) & 0xFF_FFFF) as u32) << 2
    }

    /// The program counter as a byte address.
    pub const fn pc(self) -> u32 {
        ((self.0 & 0xFF_FFFF) as u32) << 2
    }
}

/// Derives the 32-bit keystream pad for one counter: the 32 least
/// significant bits of `E_k1(I)` (the `r` LSBs of `O_i` in Algorithm 1).
#[inline]
pub fn pad(cipher: &Rectangle, counter: CounterBlock) -> u32 {
    cipher.encrypt_block(counter.as_u64()) as u32
}

/// Derives the keystream pads for a whole batch of counters in one
/// bitsliced sweep ([`Rectangle::encrypt_blocks`]): bit-identical to
/// mapping [`pad`] over the slice, but ciphering [`LaneWidth::lanes`]
/// counters per pass at the default width. This is the bulk path behind
/// sealing whole images and refilling block fetches, where every counter
/// of the sweep is known up front.
pub fn pads(cipher: &Rectangle, counters: &[CounterBlock]) -> Vec<u32> {
    pads_with(cipher, counters, LaneWidth::default())
}

/// [`pads`] at an explicit lane width — bit-identical at every width.
pub fn pads_with(cipher: &Rectangle, counters: &[CounterBlock], width: LaneWidth) -> Vec<u32> {
    let mut blocks: Vec<u64> = counters.iter().map(|c| c.as_u64()).collect();
    cipher.encrypt_blocks_with(&mut blocks, width);
    blocks.into_iter().map(|b| b as u32).collect()
}

/// Encrypts (or decrypts) `words[i]` on the edge `counters[i]` for the
/// whole batch, via one [`pads`] sweep.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn apply_batch(cipher: &Rectangle, counters: &[CounterBlock], words: &mut [u32]) {
    apply_batch_with(cipher, counters, words, LaneWidth::default());
}

/// [`apply_batch`] at an explicit lane width.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn apply_batch_with(
    cipher: &Rectangle,
    counters: &[CounterBlock],
    words: &mut [u32],
    width: LaneWidth,
) {
    assert_eq!(counters.len(), words.len(), "counter/word length mismatch");
    for (word, pad) in words.iter_mut().zip(pads_with(cipher, counters, width)) {
        *word ^= pad;
    }
}

/// Encrypts (or decrypts — XOR is an involution) one instruction word on
/// the control-flow edge `counter`.
///
/// # Examples
///
/// ```
/// use sofia_crypto::{ctr, CounterBlock, Key80, Nonce, Rectangle};
///
/// let cipher = Rectangle::new(&Key80::from_seed(1));
/// let edge = CounterBlock::from_edge(Nonce::new(1), 0x100, 0x104);
/// let ct = ctr::apply(&cipher, edge, 0xDEAD_BEEF);
/// assert_eq!(ctr::apply(&cipher, edge, ct), 0xDEAD_BEEF);
///
/// // A different edge (an invalid control flow) yields a different word.
/// let bad = CounterBlock::from_edge(Nonce::new(1), 0x200, 0x104);
/// assert_ne!(ctr::apply(&cipher, bad, ct), 0xDEAD_BEEF);
/// ```
pub fn apply(cipher: &Rectangle, counter: CounterBlock, word: u32) -> u32 {
    word ^ pad(cipher, counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key80;
    use proptest::prelude::*;

    fn cipher() -> Rectangle {
        Rectangle::new(&Key80::from_seed(0xC0FFEE))
    }

    proptest! {
        /// Field packing is lossless for all valid edges.
        #[test]
        fn counter_fields_roundtrip(
            nonce in any::<u16>(),
            prev in 0u32..(1 << 24),
            pc in 0u32..(1 << 24),
        ) {
            let c = CounterBlock::from_edge(Nonce::new(nonce), prev << 2, pc << 2);
            prop_assert_eq!(c.nonce().value(), nonce);
            prop_assert_eq!(c.prev_pc(), prev << 2);
            prop_assert_eq!(c.pc(), pc << 2);
        }

        /// Distinct edges produce distinct counters (injective packing).
        #[test]
        fn distinct_edges_distinct_counters(
            a in (0u32..1 << 24, 0u32..1 << 24),
            b in (0u32..1 << 24, 0u32..1 << 24),
        ) {
            prop_assume!(a != b);
            let ca = CounterBlock::from_edge(Nonce::new(1), a.0 << 2, a.1 << 2);
            let cb = CounterBlock::from_edge(Nonce::new(1), b.0 << 2, b.1 << 2);
            prop_assert_ne!(ca.as_u64(), cb.as_u64());
        }

        /// XOR involution: apply twice restores the word.
        #[test]
        fn apply_is_involution(word in any::<u32>(), prev in 0u32..1024, pc in 0u32..1024) {
            let c = cipher();
            let edge = CounterBlock::from_edge(Nonce::new(3), prev << 2, pc << 2);
            prop_assert_eq!(apply(&c, edge, apply(&c, edge, word)), word);
        }
    }

    #[test]
    fn fig2_wrong_edge_garbles() {
        // Paper Fig. 2: instruction 5 encrypted on edge (2 → 5); taking the
        // invalid edge (1 → 5) must not recover the plaintext.
        let c = cipher();
        let nonce = Nonce::new(0xA5);
        let addr = |i: u32| i * 4;
        let valid = CounterBlock::from_edge(nonce, addr(2), addr(5));
        let invalid = CounterBlock::from_edge(nonce, addr(1), addr(5));
        let plain = 0x0120_8825; // "mov r1, r2" stand-in
        let ct = apply(&c, valid, plain);
        assert_eq!(apply(&c, valid, ct), plain);
        assert_ne!(apply(&c, invalid, ct), plain);
    }

    #[test]
    fn nonce_separates_programs() {
        // Same program, two versions with different ω: ciphertexts differ,
        // providing the paper's cross-version copyright separation.
        let c = cipher();
        let e1 = CounterBlock::from_edge(Nonce::new(1), 0x100, 0x104);
        let e2 = CounterBlock::from_edge(Nonce::new(2), 0x100, 0x104);
        assert_ne!(apply(&c, e1, 0x1234_5678), apply(&c, e2, 0x1234_5678));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_pc_rejected() {
        let _ = CounterBlock::from_edge(Nonce::new(0), 0x101, 0x104);
    }

    #[test]
    #[should_panic(expected = "24-bit")]
    fn oversized_pc_rejected() {
        let _ = CounterBlock::from_edge(Nonce::new(0), 0x0400_0000, 0x104);
    }
}
