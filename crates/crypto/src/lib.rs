//! # sofia-crypto — cryptographic substrate of the SOFIA reproduction
//!
//! Implements the exact primitives the paper builds on (DESIGN.md,
//! substitution S6):
//!
//! * [`Rectangle`] — the RECTANGLE lightweight block cipher with a 64-bit
//!   block and an 80-bit key (reference \[35\] of the paper), 25 rounds;
//! * [`ctr`] — control-flow-bound CTR encryption of instruction words
//!   under counters `{ω ‖ prevPC ‖ PC}` ([`CounterBlock`], Algorithm 1);
//! * [`mac`] — fixed-length CBC-MAC over instruction words ([`Mac64`]);
//! * [`KeySet`] — the three device keys `k1`/`k2`/`k3` and the per-program
//!   [`Nonce`] ω.
//!
//! # Examples
//!
//! Encrypt a word on its CFG edge and verify the wrong edge garbles it:
//!
//! ```
//! use sofia_crypto::{ctr, CounterBlock, KeySet, Nonce};
//!
//! let keys = KeySet::from_seed(1).expand();
//! let nonce = Nonce::new(9);
//! let good = CounterBlock::from_edge(nonce, 0x100, 0x104);
//! let bad = CounterBlock::from_edge(nonce, 0x180, 0x104);
//!
//! let ciphertext = ctr::apply(&keys.ctr, good, 0x1234_5678);
//! assert_eq!(ctr::apply(&keys.ctr, good, ciphertext), 0x1234_5678);
//! assert_ne!(ctr::apply(&keys.ctr, bad, ciphertext), 0x1234_5678);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitslice;
pub mod ctr;
mod keys;
pub mod mac;
mod rectangle;
pub mod util;

pub use bitslice::LaneWidth;
pub use ctr::CounterBlock;
pub use keys::{ExpandedKeys, KeySet, Nonce};
pub use mac::Mac64;
pub use rectangle::{
    Key80, Rectangle, CYCLES_ITERATED, CYCLES_UNROLLED_13, ROUNDS, SBOX, SBOX_INV,
};

/// Which host implementation drives *bulk* cipher work (sealing whole
/// images, batched keystream sweeps). Purely a host-performance knob:
/// both engines produce bit-identical keystream, MACs and ciphertext
/// (pinned by the `bitslice_equiv` suite), so simulated-cycle models and
/// sealed images never depend on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CryptoEngine {
    /// One block at a time through the table-driven scalar path — the
    /// reference oracle.
    Scalar,
    /// Many blocks per pass through [`bitslice`] (the default).
    #[default]
    Bitsliced,
}
