//! The RECTANGLE lightweight block cipher (64-bit block, 80-bit key).
//!
//! RECTANGLE (Zhang et al., 2014 — reference [35] of the SOFIA paper)
//! operates on a 4×16 bit-matrix state with 25 rounds of
//! AddRoundKey → SubColumn → ShiftRow plus a final AddRoundKey.
//! SOFIA uses it both in CTR mode (instruction encryption, key `k1`) and
//! as the CBC-MAC block cipher (keys `k2`/`k3`).
//!
//! The state mapping used here: bit `i` of the 64-bit block is bit
//! `i % 16` of row `i / 16` (row 0 holds the 16 least-significant bits).
//! The implementation follows the published specification (S-box,
//! ShiftRow offsets 0/1/12/13, 5-bit LFSR round constants, 80-bit key
//! schedule) and is validated by structural tests — bijectivity,
//! avalanche, key sensitivity, and the published round-constant sequence.

use std::sync::OnceLock;

use crate::bitslice::LaneWidth;

/// The RECTANGLE S-box applied to each 4-bit column.
pub const SBOX: [u8; 16] = [
    0x6, 0x5, 0xC, 0xA, 0x1, 0xE, 0x7, 0x9, 0xB, 0x0, 0x3, 0xD, 0x8, 0xF, 0x4, 0x2,
];

/// The inverse of [`SBOX`].
pub const SBOX_INV: [u8; 16] = {
    let mut inv = [0u8; 16];
    let mut i = 0;
    while i < 16 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Number of cipher rounds.
pub const ROUNDS: usize = 25;

/// Cycles per cipher operation for the iterated (one-round-per-cycle)
/// hardware implementation (25 rounds + final key add ≈ 26, as the paper
/// states: "requires 26 cycles").
pub const CYCLES_ITERATED: u32 = 26;

/// Cycles per cipher operation after the 13× unrolling the paper applies
/// ("the cipher was unrolled to require only two cycles").
pub const CYCLES_UNROLLED_13: u32 = 2;

/// An 80-bit RECTANGLE key.
///
/// # Examples
///
/// ```
/// use sofia_crypto::{Key80, Rectangle};
///
/// let key = Key80::from_bytes([0x42; 10]);
/// let cipher = Rectangle::new(&key);
/// let ct = cipher.encrypt_block(0x0123_4567_89AB_CDEF);
/// assert_eq!(cipher.decrypt_block(ct), 0x0123_4567_89AB_CDEF);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key80([u8; 10]);

impl Key80 {
    /// Creates a key from 10 raw bytes.
    pub const fn from_bytes(bytes: [u8; 10]) -> Key80 {
        Key80(bytes)
    }

    /// Deterministically derives a key from a 64-bit seed (SplitMix64).
    ///
    /// Used throughout the test-suite and benches; production deployments
    /// of SOFIA would provision device-unique keys instead.
    pub fn from_seed(seed: u64) -> Key80 {
        let mut s = crate::util::SplitMix64::new(seed);
        let a = s.next_u64().to_le_bytes();
        let b = s.next_u64().to_le_bytes();
        let mut bytes = [0u8; 10];
        bytes[..8].copy_from_slice(&a);
        bytes[8..].copy_from_slice(&b[..2]);
        Key80(bytes)
    }

    /// The raw key bytes.
    pub const fn as_bytes(&self) -> &[u8; 10] {
        &self.0
    }
}

impl std::fmt::Debug for Key80 {
    /// Redacted: keys are embedded device secrets in SOFIA's threat model
    /// ("known only by the software provider"), so they never appear in
    /// debug output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Key80(<redacted>)")
    }
}

/// Packed 4-column S-box table: maps 16 bits (4 columns × 4 rows, nibble
/// per row) to the substituted 16 bits. Built lazily, shared process-wide.
fn quad_table() -> &'static [u16; 65536] {
    static TABLE: OnceLock<Box<[u16; 65536]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0u16; 65536].into_boxed_slice();
        for idx in 0..65536u32 {
            let n0 = idx & 0xF;
            let n1 = (idx >> 4) & 0xF;
            let n2 = (idx >> 8) & 0xF;
            let n3 = (idx >> 12) & 0xF;
            let mut o = [0u32; 4]; // output nibbles per row
            for col in 0..4 {
                let v = ((n0 >> col) & 1)
                    | (((n1 >> col) & 1) << 1)
                    | (((n2 >> col) & 1) << 2)
                    | (((n3 >> col) & 1) << 3);
                let w = SBOX[v as usize] as u32;
                o[0] |= (w & 1) << col;
                o[1] |= ((w >> 1) & 1) << col;
                o[2] |= ((w >> 2) & 1) << col;
                o[3] |= ((w >> 3) & 1) << col;
            }
            t[idx as usize] = (o[0] | (o[1] << 4) | (o[2] << 8) | (o[3] << 12)) as u16;
        }
        t.try_into().expect("length 65536")
    })
}

fn quad_table_inv() -> &'static [u16; 65536] {
    static TABLE: OnceLock<Box<[u16; 65536]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let fwd = quad_table();
        let mut t = vec![0u16; 65536].into_boxed_slice();
        for (i, &o) in fwd.iter().enumerate() {
            t[o as usize] = i as u16;
        }
        t.try_into().expect("length 65536")
    })
}

#[inline]
fn sub_column(rows: &mut [u16; 4], table: &[u16; 65536]) {
    let mut out = [0u16; 4];
    for k in 0..4 {
        let shift = 4 * k;
        let idx = (((rows[0] >> shift) & 0xF)
            | (((rows[1] >> shift) & 0xF) << 4)
            | (((rows[2] >> shift) & 0xF) << 8)
            | (((rows[3] >> shift) & 0xF) << 12)) as usize;
        let o = table[idx];
        out[0] |= (o & 0xF) << shift;
        out[1] |= ((o >> 4) & 0xF) << shift;
        out[2] |= ((o >> 8) & 0xF) << shift;
        out[3] |= ((o >> 12) & 0xF) << shift;
    }
    *rows = out;
}

#[inline]
fn shift_row(rows: &mut [u16; 4]) {
    rows[1] = rows[1].rotate_left(1);
    rows[2] = rows[2].rotate_left(12);
    rows[3] = rows[3].rotate_left(13);
}

#[inline]
fn shift_row_inv(rows: &mut [u16; 4]) {
    rows[1] = rows[1].rotate_right(1);
    rows[2] = rows[2].rotate_right(12);
    rows[3] = rows[3].rotate_right(13);
}

#[inline]
fn block_to_rows(block: u64) -> [u16; 4] {
    [
        block as u16,
        (block >> 16) as u16,
        (block >> 32) as u16,
        (block >> 48) as u16,
    ]
}

#[inline]
fn rows_to_block(rows: [u16; 4]) -> u64 {
    rows[0] as u64 | ((rows[1] as u64) << 16) | ((rows[2] as u64) << 32) | ((rows[3] as u64) << 48)
}

/// The next 5-bit round constant from the LFSR
/// (`new_bit = rc4 ⊕ rc2`, shift left).
#[inline]
fn next_rc(rc: u8) -> u8 {
    ((rc << 1) | (((rc >> 4) ^ (rc >> 2)) & 1)) & 0x1F
}

/// A RECTANGLE-80 instance with a fully expanded key schedule.
///
/// Construction expands the 80-bit key into 26 round keys once; block
/// operations are then allocation-free.
///
/// # Examples
///
/// ```
/// use sofia_crypto::{Key80, Rectangle};
///
/// let cipher = Rectangle::new(&Key80::from_seed(7));
/// // A PRP: different plaintexts map to different ciphertexts.
/// assert_ne!(cipher.encrypt_block(0), cipher.encrypt_block(1));
/// ```
#[derive(Clone)]
pub struct Rectangle {
    pub(crate) round_keys: [[u16; 4]; ROUNDS + 1],
}

impl Rectangle {
    /// Expands `key` and returns a ready-to-use cipher instance.
    pub fn new(key: &Key80) -> Rectangle {
        // Key state: 5 rows of 16 bits, row 0 = least-significant bytes.
        let kb = key.as_bytes();
        let mut v = [0u16; 5];
        for (i, row) in v.iter_mut().enumerate() {
            *row = u16::from_le_bytes([kb[2 * i], kb[2 * i + 1]]);
        }
        let mut round_keys = [[0u16; 4]; ROUNDS + 1];
        let mut rc: u8 = 0x01;
        for (i, rk) in round_keys.iter_mut().enumerate() {
            *rk = [v[0], v[1], v[2], v[3]];
            if i == ROUNDS {
                break;
            }
            // S-box on the 4 rightmost columns of rows 0..3.
            let mut low = [v[0], v[1], v[2], v[3]];
            let idx = ((low[0] & 0xF)
                | ((low[1] & 0xF) << 4)
                | ((low[2] & 0xF) << 8)
                | ((low[3] & 0xF) << 12)) as usize;
            let o = quad_table()[idx];
            low[0] = (low[0] & !0xF) | (o & 0xF);
            low[1] = (low[1] & !0xF) | ((o >> 4) & 0xF);
            low[2] = (low[2] & !0xF) | ((o >> 8) & 0xF);
            low[3] = (low[3] & !0xF) | ((o >> 12) & 0xF);
            let s = [low[0], low[1], low[2], low[3], v[4]];
            // Generalised Feistel.
            v[0] = s[0].rotate_left(8) ^ s[1];
            v[1] = s[2];
            v[2] = s[3];
            v[3] = s[3].rotate_left(12) ^ s[4];
            v[4] = s[0];
            // Round constant into the 5 LSBs of row 0.
            v[0] ^= rc as u16;
            rc = next_rc(rc);
        }
        Rectangle { round_keys }
    }

    /// Encrypts one 64-bit block.
    #[inline]
    pub fn encrypt_block(&self, block: u64) -> u64 {
        let table = quad_table();
        let mut rows = block_to_rows(block);
        for rk in &self.round_keys[..ROUNDS] {
            for (r, k) in rows.iter_mut().zip(rk) {
                *r ^= k;
            }
            sub_column(&mut rows, table);
            shift_row(&mut rows);
        }
        for (r, k) in rows.iter_mut().zip(&self.round_keys[ROUNDS]) {
            *r ^= k;
        }
        rows_to_block(rows)
    }

    /// Decrypts one 64-bit block (the inverse of [`Rectangle::encrypt_block`]).
    ///
    /// Not used on SOFIA's data path — CTR and CBC-MAC only ever run the
    /// forward permutation — but provided for API completeness and used by
    /// the round-trip tests.
    #[inline]
    pub fn decrypt_block(&self, block: u64) -> u64 {
        let table = quad_table_inv();
        let mut rows = block_to_rows(block);
        for (r, k) in rows.iter_mut().zip(&self.round_keys[ROUNDS]) {
            *r ^= k;
        }
        for rk in self.round_keys[..ROUNDS].iter().rev() {
            shift_row_inv(&mut rows);
            sub_column(&mut rows, table);
            for (r, k) in rows.iter_mut().zip(rk) {
                *r ^= k;
            }
        }
        rows_to_block(rows)
    }

    /// Encrypts a batch of independent 64-bit blocks in place through the
    /// bitsliced engine ([`crate::bitslice`]) at the default
    /// [`LaneWidth`]: [`LaneWidth::lanes`] blocks are ciphered per pass,
    /// with a zero-padded final pass for ragged batch sizes.
    /// Bit-identical to mapping [`Rectangle::encrypt_block`] over the
    /// slice (pinned by the equivalence suite), several times faster for
    /// bulk work.
    pub fn encrypt_blocks(&self, blocks: &mut [u64]) {
        crate::bitslice::encrypt_blocks(self, blocks, LaneWidth::default());
    }

    /// [`Rectangle::encrypt_blocks`] at an explicit lane width. Every
    /// width is bit-identical; the choice only moves host throughput.
    pub fn encrypt_blocks_with(&self, blocks: &mut [u64], width: LaneWidth) {
        crate::bitslice::encrypt_blocks(self, blocks, width);
    }

    /// Decrypts a batch of independent 64-bit blocks in place — the
    /// inverse of [`Rectangle::encrypt_blocks`], same engine.
    pub fn decrypt_blocks(&self, blocks: &mut [u64]) {
        crate::bitslice::decrypt_blocks(self, blocks, LaneWidth::default());
    }

    /// [`Rectangle::decrypt_blocks`] at an explicit lane width.
    pub fn decrypt_blocks_with(&self, blocks: &mut [u64], width: LaneWidth) {
        crate::bitslice::decrypt_blocks(self, blocks, width);
    }
}

impl std::fmt::Debug for Rectangle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Rectangle(<key schedule redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 16];
        for &v in &SBOX {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        for (i, &v) in SBOX.iter().enumerate() {
            assert_eq!(SBOX_INV[v as usize], i as u8);
        }
    }

    #[test]
    fn round_constants_match_published_sequence() {
        // First constants listed in the RECTANGLE specification.
        let expected = [0x01, 0x02, 0x04, 0x09, 0x12, 0x05, 0x0B, 0x16, 0x0C, 0x19];
        let mut rc: u8 = 0x01;
        for &e in &expected {
            assert_eq!(rc, e);
            rc = next_rc(rc);
        }
        // The LFSR has full period over its 25 uses: no repeats.
        let mut seen = std::collections::HashSet::new();
        let mut rc: u8 = 0x01;
        for _ in 0..ROUNDS {
            assert!(seen.insert(rc), "round constant repeated");
            rc = next_rc(rc);
        }
    }

    proptest! {
        #[test]
        fn encrypt_decrypt_roundtrip(key in any::<u64>(), block in any::<u64>()) {
            let cipher = Rectangle::new(&Key80::from_seed(key));
            prop_assert_eq!(cipher.decrypt_block(cipher.encrypt_block(block)), block);
        }

        #[test]
        fn different_keys_differ(block in any::<u64>()) {
            let a = Rectangle::new(&Key80::from_seed(1));
            let b = Rectangle::new(&Key80::from_seed(2));
            prop_assert_ne!(a.encrypt_block(block), b.encrypt_block(block));
        }
    }

    #[test]
    fn avalanche_on_plaintext() {
        // Flipping one plaintext bit flips on average ~32 of 64 ciphertext
        // bits; allow a generous statistical band.
        let cipher = Rectangle::new(&Key80::from_seed(99));
        let mut total = 0u32;
        let trials = 256;
        let mut x = crate::util::SplitMix64::new(7);
        for _ in 0..trials {
            let p = x.next_u64();
            let bit = 1u64 << (x.next_u64() % 64);
            total += (cipher.encrypt_block(p) ^ cipher.encrypt_block(p ^ bit)).count_ones();
        }
        let avg = total as f64 / trials as f64;
        assert!((24.0..40.0).contains(&avg), "avalanche average {avg}");
    }

    #[test]
    fn avalanche_on_key() {
        let mut x = crate::util::SplitMix64::new(13);
        let mut total = 0u32;
        let trials = 128;
        for _ in 0..trials {
            let mut ka = [0u8; 10];
            for b in &mut ka {
                *b = x.next_u64() as u8;
            }
            let mut kb = ka;
            let bitpos = (x.next_u64() % 80) as usize;
            kb[bitpos / 8] ^= 1 << (bitpos % 8);
            let p = x.next_u64();
            let a = Rectangle::new(&Key80::from_bytes(ka)).encrypt_block(p);
            let b = Rectangle::new(&Key80::from_bytes(kb)).encrypt_block(p);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / trials as f64;
        assert!((24.0..40.0).contains(&avg), "key avalanche average {avg}");
    }

    #[test]
    fn encryption_is_not_identity_or_xor() {
        let cipher = Rectangle::new(&Key80::from_seed(3));
        let c0 = cipher.encrypt_block(0);
        let c1 = cipher.encrypt_block(1);
        assert_ne!(c0, 0);
        // A pure XOR cipher (the ASIST weakness cited in the paper) would
        // satisfy c1 == c0 ^ 1; RECTANGLE must not.
        assert_ne!(c1, c0 ^ 1);
    }

    #[test]
    fn quad_table_matches_scalar_sbox() {
        // Spot-check the packed table against a direct per-column S-box.
        let mut x = crate::util::SplitMix64::new(21);
        for _ in 0..200 {
            let mut rows = [
                x.next_u64() as u16,
                x.next_u64() as u16,
                x.next_u64() as u16,
                x.next_u64() as u16,
            ];
            let mut expect = [0u16; 4];
            for j in 0..16 {
                let v = ((rows[0] >> j) & 1)
                    | (((rows[1] >> j) & 1) << 1)
                    | (((rows[2] >> j) & 1) << 2)
                    | (((rows[3] >> j) & 1) << 3);
                let w = SBOX[v as usize] as u16;
                for (r, e) in expect.iter_mut().enumerate() {
                    *e |= ((w >> r) & 1) << j;
                }
            }
            sub_column(&mut rows, quad_table());
            assert_eq!(rows, expect);
        }
    }

    #[test]
    fn key_debug_is_redacted() {
        let k = Key80::from_seed(5);
        assert_eq!(format!("{k:?}"), "Key80(<redacted>)");
    }
}
