//! Device key material and the per-program nonce.

use crate::{Key80, Rectangle};

/// The per-program nonce ω.
///
/// The paper requires ω to be "unique across different programs and
/// different program versions"; it is stored in the clear in the secure
/// image header (it is not secret — uniqueness, not confidentiality, is
/// what prevents cross-program keystream reuse).
///
/// # Examples
///
/// ```
/// use sofia_crypto::Nonce;
/// assert_ne!(Nonce::new(1), Nonce::new(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Nonce(u16);

impl Nonce {
    /// Wraps a raw 16-bit nonce value.
    pub const fn new(value: u16) -> Nonce {
        Nonce(value)
    }

    /// The raw nonce value.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl std::fmt::Display for Nonce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ω={:#06x}", self.0)
    }
}

/// The three device-unique keys of a SOFIA core (paper §II-B):
/// `k1` encrypts instructions (CTR), `k2` MACs execution blocks and `k3`
/// MACs multiplexor blocks.
///
/// In the paper's deployment model these keys are fused into the device
/// and "known only by the software provider"; here they parameterise both
/// the transformer (install time) and the simulated SOFIA core (run time).
///
/// # Examples
///
/// ```
/// use sofia_crypto::KeySet;
///
/// let keys = KeySet::from_seed(42);
/// let again = KeySet::from_seed(42);
/// assert_eq!(keys, again); // deterministic derivation for reproducibility
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KeySet {
    /// CTR-mode instruction-encryption key.
    pub k1: Key80,
    /// CBC-MAC key for execution blocks.
    pub k2: Key80,
    /// CBC-MAC key for multiplexor blocks.
    pub k3: Key80,
}

impl KeySet {
    /// Builds a key set from three explicit keys.
    pub const fn new(k1: Key80, k2: Key80, k3: Key80) -> KeySet {
        KeySet { k1, k2, k3 }
    }

    /// Deterministically derives three independent keys from one seed.
    pub fn from_seed(seed: u64) -> KeySet {
        let mut s = crate::util::SplitMix64::new(seed ^ 0x50F1_A000_0000_0000);
        KeySet {
            k1: Key80::from_seed(s.next_u64()),
            k2: Key80::from_seed(s.next_u64()),
            k3: Key80::from_seed(s.next_u64()),
        }
    }

    /// Expands all three keys into ready cipher instances.
    pub fn expand(&self) -> ExpandedKeys {
        ExpandedKeys {
            ctr: Rectangle::new(&self.k1),
            mac_exec: Rectangle::new(&self.k2),
            mac_mux: Rectangle::new(&self.k3),
        }
    }
}

/// Pre-expanded cipher instances for the three keys; construction runs the
/// key schedule once so the fetch path is allocation-free.
#[derive(Clone, Debug)]
pub struct ExpandedKeys {
    /// `E_k1` — CTR pad generation.
    pub ctr: Rectangle,
    /// `E_k2` — execution-block CBC-MAC.
    pub mac_exec: Rectangle,
    /// `E_k3` — multiplexor-block CBC-MAC.
    pub mac_mux: Rectangle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_are_pairwise_distinct() {
        let ks = KeySet::from_seed(7);
        assert_ne!(ks.k1.as_bytes(), ks.k2.as_bytes());
        assert_ne!(ks.k2.as_bytes(), ks.k3.as_bytes());
        assert_ne!(ks.k1.as_bytes(), ks.k3.as_bytes());
    }

    #[test]
    fn different_seeds_different_keys() {
        assert_ne!(KeySet::from_seed(1), KeySet::from_seed(2));
    }

    #[test]
    fn expanded_keys_are_usable() {
        let e = KeySet::from_seed(9).expand();
        assert_ne!(e.ctr.encrypt_block(0), e.mac_exec.encrypt_block(0));
    }
}
