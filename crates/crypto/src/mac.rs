//! CBC-MAC over instruction words (ISO/IEC 9797-1 algorithm 1).
//!
//! SOFIA precomputes a 64-bit CBC-MAC over the plaintext instructions of
//! every block and stores it interleaved with the code; the hardware
//! recomputes it over the *decrypted* words at run time (paper §II-B).
//!
//! CBC-MAC is only secure for fixed-length messages, so the paper assigns
//! one key per block type (k2 for execution blocks, k3 for multiplexor
//! blocks), each of which always MACs the same number of words. This
//! module enforces that practice: [`mac_words`] takes the padded length
//! from the caller and refuses over-long messages.

use crate::{LaneWidth, Rectangle};

/// A 64-bit message authentication code split into the two 32-bit words
/// stored in a block (`M1` is the most significant half).
///
/// # Examples
///
/// ```
/// use sofia_crypto::Mac64;
///
/// let mac = Mac64::from_words(0xAAAA_0000, 0x0000_BBBB);
/// assert_eq!(mac.m1(), 0xAAAA_0000);
/// assert_eq!(mac.m2(), 0x0000_BBBB);
/// assert_eq!(mac.as_u64(), 0xAAAA_0000_0000_BBBB);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mac64(u64);

impl Mac64 {
    /// Wraps a raw 64-bit MAC value.
    pub const fn new(value: u64) -> Mac64 {
        Mac64(value)
    }

    /// Rebuilds a MAC from its two stored words.
    pub const fn from_words(m1: u32, m2: u32) -> Mac64 {
        Mac64(((m1 as u64) << 32) | m2 as u64)
    }

    /// The raw 64-bit value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The first stored MAC word (most significant half).
    pub const fn m1(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The second stored MAC word (least significant half).
    pub const fn m2(self) -> u32 {
        self.0 as u32
    }

    /// Truncates the MAC to its `bits` least significant bits.
    ///
    /// Used by the security-evaluation experiments to measure forgery
    /// success probability at tractable MAC lengths (§IV-A's 2^(n−1)
    /// scaling argument).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    pub fn truncate(self, bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "MAC length must be 1..=64 bits");
        if bits == 64 {
            self.0
        } else {
            self.0 & ((1u64 << bits) - 1)
        }
    }
}

/// Computes the CBC-MAC of `words`, zero-padded to exactly
/// `padded_words` 32-bit words (which must be even: the cipher block is
/// 64 bits = two words).
///
/// All callers MAC a *fixed* `padded_words` per key, making CBC-MAC's
/// fixed-length requirement structural.
///
/// # Panics
///
/// Panics if `padded_words` is odd, zero, or smaller than `words.len()`.
///
/// # Examples
///
/// ```
/// use sofia_crypto::{mac, Key80, Rectangle};
///
/// let cipher = Rectangle::new(&Key80::from_seed(2));
/// let a = mac::mac_words(&cipher, &[1, 2, 3, 4, 5, 6], 6);
/// let b = mac::mac_words(&cipher, &[1, 2, 3, 4, 5, 7], 6);
/// assert_ne!(a, b);
/// ```
#[inline]
pub fn mac_words(cipher: &Rectangle, words: &[u32], padded_words: usize) -> Mac64 {
    assert!(padded_words > 0, "empty MAC domain");
    assert!(padded_words % 2 == 0, "padded length must be even");
    assert!(
        words.len() <= padded_words,
        "message longer than its fixed MAC domain ({} > {padded_words})",
        words.len()
    );
    let mut state: u64 = 0;
    for pair in 0..padded_words / 2 {
        let lo = words.get(pair * 2).copied().unwrap_or(0) as u64;
        let hi = words.get(pair * 2 + 1).copied().unwrap_or(0) as u64;
        let block = lo | (hi << 32);
        state = cipher.encrypt_block(state ^ block);
    }
    Mac64(state)
}

/// Computes [`mac_words`] for many *independent* messages that share one
/// fixed `padded_words` domain, lane-parallel: CBC chaining is sequential
/// *within* a message, but the chains of different messages are
/// independent, so each CBC step ciphers all messages' current states in
/// one bitsliced sweep ([`Rectangle::encrypt_blocks`]).
///
/// Bit-identical to mapping [`mac_words`] over `messages` (pinned by the
/// equivalence suite). This is the install-time bulk path: an image's
/// blocks of one kind all MAC under the same key and padded length.
///
/// # Panics
///
/// Panics under the same conditions as [`mac_words`], checked per
/// message.
pub fn mac_words_batch(cipher: &Rectangle, messages: &[&[u32]], padded_words: usize) -> Vec<Mac64> {
    mac_words_batch_with(cipher, messages, padded_words, LaneWidth::default())
}

/// [`mac_words_batch`] at an explicit lane width — bit-identical at
/// every width.
///
/// # Panics
///
/// Panics under the same conditions as [`mac_words`], checked per
/// message.
pub fn mac_words_batch_with(
    cipher: &Rectangle,
    messages: &[&[u32]],
    padded_words: usize,
    width: LaneWidth,
) -> Vec<Mac64> {
    assert!(padded_words > 0, "empty MAC domain");
    assert!(padded_words % 2 == 0, "padded length must be even");
    for words in messages {
        assert!(
            words.len() <= padded_words,
            "message longer than its fixed MAC domain ({} > {padded_words})",
            words.len()
        );
    }
    let mut states = vec![0u64; messages.len()];
    for pair in 0..padded_words / 2 {
        for (state, words) in states.iter_mut().zip(messages) {
            let lo = words.get(pair * 2).copied().unwrap_or(0) as u64;
            let hi = words.get(pair * 2 + 1).copied().unwrap_or(0) as u64;
            *state ^= lo | (hi << 32);
        }
        cipher.encrypt_blocks_with(&mut states, width);
    }
    states.into_iter().map(Mac64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Key80;
    use proptest::prelude::*;

    fn cipher() -> Rectangle {
        Rectangle::new(&Key80::from_seed(0x4D41_4331))
    }

    proptest! {
        /// Any single-word change flips the MAC (with overwhelming
        /// probability; the strategy space makes collision vanishing).
        #[test]
        fn single_word_change_changes_mac(
            mut words in proptest::collection::vec(any::<u32>(), 6),
            pos in 0usize..6,
            delta in 1u32..,
        ) {
            let c = cipher();
            let a = mac_words(&c, &words, 6);
            words[pos] ^= delta;
            let b = mac_words(&c, &words, 6);
            prop_assert_ne!(a, b);
        }

        /// MAC words round-trip through the stored (M1, M2) pair.
        #[test]
        fn m1_m2_roundtrip(v in any::<u64>()) {
            let m = Mac64::new(v);
            prop_assert_eq!(Mac64::from_words(m.m1(), m.m2()), m);
        }

        /// Truncation keeps exactly the requested bits.
        #[test]
        fn truncate_masks(v in any::<u64>(), bits in 1u32..=63) {
            let t = Mac64::new(v).truncate(bits);
            prop_assert!(t < (1u64 << bits));
            prop_assert_eq!(t, v & ((1 << bits) - 1));
        }
    }

    #[test]
    fn different_keys_produce_different_macs() {
        // The paper's per-block-type key separation (k2 vs k3): the same
        // five words MAC differently under each key.
        let words = [10, 20, 30, 40, 50];
        let k2 = Rectangle::new(&Key80::from_seed(2));
        let k3 = Rectangle::new(&Key80::from_seed(3));
        assert_ne!(mac_words(&k2, &words, 6), mac_words(&k3, &words, 6));
    }

    #[test]
    fn zero_padding_is_deterministic() {
        let c = cipher();
        let a = mac_words(&c, &[1, 2, 3, 4, 5], 6);
        let b = mac_words(&c, &[1, 2, 3, 4, 5, 0], 6);
        // Explicit trailing zero and implicit padding agree by definition…
        assert_eq!(a, b);
        // …which is exactly why each block type gets its own key: the
        // fixed per-key length prevents cross-length splicing.
    }

    #[test]
    fn order_matters() {
        let c = cipher();
        assert_ne!(
            mac_words(&c, &[1, 2, 3, 4, 5, 6], 6),
            mac_words(&c, &[6, 5, 4, 3, 2, 1], 6)
        );
    }

    #[test]
    #[should_panic(expected = "longer than")]
    fn overlong_message_rejected() {
        let c = cipher();
        let _ = mac_words(&c, &[0; 8], 6);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_padding_rejected() {
        let c = cipher();
        let _ = mac_words(&c, &[0; 3], 5);
    }
}
