//! Small deterministic utilities shared across the workspace.

/// SplitMix64: a tiny, high-quality deterministic generator used for key
/// derivation and reproducible test data (not for cryptographic secrets in
/// a real deployment — see [`crate::KeySet::from_seed`]).
///
/// # Examples
///
/// ```
/// use sofia_crypto::util::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub const fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Produces the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Produces a value uniform in `0..bound` (rejection-free bias of at
    /// most 2⁻³² for the small bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nontrivial() {
        let mut g = SplitMix64::new(42);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        let mut g2 = SplitMix64::new(42);
        assert_eq!(g2.next_u64(), a);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(g.next_below(17) < 17);
        }
    }
}
