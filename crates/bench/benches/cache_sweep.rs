//! The verified-block-cache geometry sweep, plus the `BENCH_vcache.json`
//! trajectory record.
//!
//! Criterion measures *host* simulation throughput across cache
//! geometries; the JSON records *simulated* cycle counts (vanilla /
//! sofia-uncached / sofia-cached), which are deterministic and
//! host-independent — that file is the perf trajectory tracked from PR 2
//! onward. It is written on every invocation, including the smoke run
//! `cargo test` performs, so the record can never go stale.

use criterion::{black_box, criterion_group, Criterion};
use sofia_core::machine::SofiaMachine;
use sofia_core::{SofiaConfig, VCacheConfig};
use sofia_crypto::KeySet;
use sofia_workloads::{adpcm, kernels};

/// The geometry the JSON trajectory is recorded at.
fn trajectory_config() -> VCacheConfig {
    VCacheConfig::enabled(256, 8)
}

fn bench_cache_sweep(c: &mut Criterion) {
    let keys = KeySet::from_seed(0xCA5E);
    let w = kernels::fib(5_000);
    let image = w.secure_image(&keys);
    let mut g = c.benchmark_group("cache_sweep");
    for (label, vcache) in [
        ("off", VCacheConfig::default()),
        ("dm16", VCacheConfig::enabled(16, 1)),
        ("a64x4", VCacheConfig::enabled(64, 4)),
        ("a256x8", VCacheConfig::enabled(256, 8)),
    ] {
        let config = SofiaConfig {
            vcache,
            ..Default::default()
        };
        g.bench_function(format!("fib5000/{label}"), |b| {
            b.iter(|| {
                let mut m = SofiaMachine::with_config(black_box(&image), &keys, &config);
                m.run(10_000_000).unwrap();
                m.stats().exec.cycles
            })
        });
    }
    g.finish();
}

fn emit_bench_json() {
    let keys = KeySet::from_seed(0xCA5E);
    let vcache = trajectory_config();
    let rows: Vec<_> = [
        ("fib20", kernels::fib(20)),
        ("fib5000", kernels::fib(5_000)),
        ("crc32", kernels::crc32(96)),
        ("adpcm600", adpcm::workload(600)),
    ]
    .iter()
    .map(|(label, w)| {
        let mut row = sofia_bench::vcache_row(w, &keys, vcache);
        row.name = label.to_string();
        row
    })
    .collect();
    let json = sofia_bench::vcache_rows_json(vcache, &rows);
    // The workspace root, so the trajectory file sits next to CHANGES.md.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_vcache.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("BENCH_vcache.json not written: {e}"),
    }
}

criterion_group!(benches, bench_cache_sweep);

fn main() {
    emit_bench_json();
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
