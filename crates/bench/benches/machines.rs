//! Criterion benches comparing simulator throughput of the vanilla and
//! SOFIA machines — the host-side cost of the reproduction — plus the
//! per-block fetch/verify path in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sofia_core::machine::SofiaMachine;
use sofia_cpu::machine::VanillaMachine;
use sofia_crypto::KeySet;
use sofia_workloads::kernels;

fn bench_vanilla(c: &mut Criterion) {
    let w = kernels::fib(5_000);
    let assembly = w.assembly();
    let mut g = c.benchmark_group("simulate");
    g.throughput(Throughput::Elements(5_000 * 5)); // ~5 insts/iteration
    g.bench_function("vanilla_fib5000", |b| {
        b.iter(|| {
            let mut m = VanillaMachine::new(black_box(&assembly));
            m.run(10_000_000).unwrap();
            m.stats().cycles
        })
    });
    g.finish();
}

fn bench_sofia(c: &mut Criterion) {
    let keys = KeySet::from_seed(3);
    let w = kernels::fib(5_000);
    let image = w.secure_image(&keys);
    let mut g = c.benchmark_group("simulate");
    g.throughput(Throughput::Elements(5_000 * 5));
    g.bench_function("sofia_fib5000", |b| {
        b.iter(|| {
            let mut m = SofiaMachine::new(black_box(&image), &keys);
            m.run(10_000_000).unwrap();
            m.stats().exec.cycles
        })
    });
    g.finish();
}

fn bench_block_fetch(c: &mut Criterion) {
    // One verified block fetch+execute: the steady-state unit of work.
    let keys = KeySet::from_seed(4);
    let w = kernels::fib(1_000_000); // long-running: never halts in-bench
    let image = w.secure_image(&keys);
    c.bench_function("sofia_step_block", |b| {
        let mut m = SofiaMachine::new(&image, &keys);
        b.iter(|| m.step_block().unwrap().executed_slots)
    });
}

criterion_group!(benches, bench_vanilla, bench_sofia, bench_block_fetch);
criterion_main!(benches);
