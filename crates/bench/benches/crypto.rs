//! Criterion benches for the cryptographic substrate: RECTANGLE block
//! operations, CTR pad generation, per-block CBC-MAC and key expansion —
//! the per-fetch costs behind every SOFIA cycle model parameter.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sofia_crypto::{ctr, mac, CounterBlock, Key80, KeySet, Nonce, Rectangle};

fn bench_rectangle(c: &mut Criterion) {
    let cipher = Rectangle::new(&Key80::from_seed(1));
    let mut g = c.benchmark_group("rectangle");
    g.throughput(Throughput::Bytes(8));
    g.bench_function("encrypt_block", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = cipher.encrypt_block(black_box(x));
            x
        })
    });
    g.bench_function("decrypt_block", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = cipher.decrypt_block(black_box(x));
            x
        })
    });
    g.finish();

    c.bench_function("key_schedule", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Rectangle::new(&Key80::from_seed(black_box(seed)))
        })
    });
}

fn bench_ctr_and_mac(c: &mut Criterion) {
    let keys = KeySet::from_seed(2).expand();
    let nonce = Nonce::new(7);
    c.bench_function("ctr_pad_per_word", |b| {
        let mut pc = 0x100u32;
        b.iter(|| {
            pc = pc.wrapping_add(4) & 0xFF_FFFC;
            let counter = CounterBlock::from_edge(nonce, pc, pc.wrapping_add(4) & 0xFF_FFFC);
            ctr::apply(&keys.ctr, counter, black_box(0xDEAD_BEEF))
        })
    });
    c.bench_function("cbc_mac_exec_block", |b| {
        let words = [1u32, 2, 3, 4, 5, 6];
        b.iter(|| mac::mac_words(&keys.mac_exec, black_box(&words), 6))
    });
}

criterion_group!(benches, bench_rectangle, bench_ctr_and_mac);
criterion_main!(benches);
