//! The host-throughput experiment, plus the `BENCH_host.json` record.
//!
//! Everything here is **wall-clock on this host** — the one trajectory
//! file whose numbers are *not* simulated cycles. It records what the
//! host-side optimisations (bitsliced RECTANGLE, batch sealing, the
//! zero-copy verified-block dispatch, the work-stealing fleet pool)
//! actually buy on real silicon: keystream blocks/sec scalar vs
//! bitsliced, host MIPS of the three machines, seals/sec under each
//! crypto engine, and fleet jobs/sec shared-queue vs stealing. Numbers
//! are informational (no CI thresholds — wall clock is noisy and
//! machine-dependent).
//!
//! Unlike the simulated-cycle trajectory files (bit-for-bit
//! reproducible, safely rewritten by every run), `BENCH_host.json` is
//! only (re)written by a *measuring* invocation — `cargo bench --bench
//! host` or `repro -- host`, both release in CI. The smoke run under
//! `cargo test` still exercises the whole measurement path (including
//! the fleet pools) but skips the write, so test runs never dirty the
//! committed record with debug-build wall-clock numbers.

use criterion::{black_box, criterion_group, Criterion};
use sofia_bench::{host_json, host_report};

fn bench_host(c: &mut Criterion) {
    let mut g = c.benchmark_group("host");
    g.bench_function("keystream/16k", |b| {
        b.iter(|| black_box(sofia_bench::host_keystream(1 << 14, 1)))
    });
    g.bench_function("seal/adpcm600", |b| {
        b.iter(|| black_box(sofia_bench::host_seal_rates(1)))
    });
    g.bench_function("seal_farm/16-tenant-wave", |b| {
        b.iter(|| {
            black_box(sofia_bench::host_seal_farm_points(
                &sofia_bench::host_worker_counts(),
                16,
                1,
            ))
        })
    });
    g.bench_function("mips/fib5000", |b| {
        b.iter(|| black_box(sofia_bench::host_mips(1)))
    });
    g.finish();
}

fn emit_bench_json(measure: bool) {
    if measure {
        let report = host_report(3);
        sofia_bench::write_host_json(&host_json(&report));
    } else {
        // Smoke: run the whole experiment once (single samples) so the
        // path is exercised on every `cargo test`, but do not overwrite
        // the recorded release figures with debug wall clock.
        std::hint::black_box(host_report(1));
    }
}

criterion_group!(benches, bench_host);

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    emit_bench_json(measure);
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
