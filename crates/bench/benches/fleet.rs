//! The fleet scaling experiment, plus the `BENCH_fleet.json` trajectory
//! record.
//!
//! Criterion measures *host* throughput of the worker pool (how fast this
//! machine simulates the batch — interesting locally, meaningless on a
//! single-core CI box); the JSON records the **virtual-time** metrics
//! (makespan in simulated cycles on the deterministic tick-synchronous
//! schedule model, jobs/sec at the Table I SOFIA clock), which are
//! host-independent and reproduce bit-for-bit. The file is written on
//! every invocation, including the smoke run `cargo test` performs, so
//! the record can never go stale.

use criterion::{black_box, criterion_group, Criterion, Throughput};
use sofia_bench::{
    async_wfq_report, fleet_json, fleet_mix, fleet_mix_tenants, fleet_scaling_series,
    FLEET_BENCH_SLICE,
};
use sofia_fleet::{Fleet, FleetConfig, SchedMode};

/// Tenants the async serving section runs with — the 1k point of the
/// ISSUE's 1k–10k range; `repro -- fleet` sweeps further.
const ASYNC_TENANTS: usize = 1_000;

fn bench_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet");
    g.throughput(Throughput::Elements(fleet_mix().len() as u64));
    for workers in [1usize, 2, 4] {
        for (label, mode) in [
            ("rtc", SchedMode::RunToCompletion),
            (
                "sliced",
                SchedMode::FuelSliced {
                    slice: FLEET_BENCH_SLICE,
                },
            ),
        ] {
            g.bench_function(format!("mix24/{label}/w{workers}"), |b| {
                b.iter(|| {
                    let mut fleet = Fleet::new(FleetConfig {
                        workers,
                        mode,
                        ..Default::default()
                    });
                    fleet_mix_tenants(&mut fleet);
                    for spec in fleet_mix() {
                        fleet.submit(black_box(spec)).unwrap();
                    }
                    let records = fleet.run_batch();
                    assert_eq!(records.len(), 24);
                    fleet.stats().total().cycles
                })
            });
        }
    }
    g.finish();
}

fn emit_bench_json() {
    let workers = [1usize, 2, 4, 8];
    let rtc = fleet_scaling_series(&workers, SchedMode::RunToCompletion);
    let sliced = fleet_scaling_series(
        &workers,
        SchedMode::FuelSliced {
            slice: FLEET_BENCH_SLICE,
        },
    );
    // The determinism invariant, checked on every emission: total work is
    // worker-count-invariant, and throughput scales monotonically 1 -> 4.
    for series in [&rtc, &sliced] {
        for pair in series.windows(2) {
            assert_eq!(pair[0].total_cycles, pair[1].total_cycles);
            if pair[1].workers <= 4 {
                assert!(
                    pair[1].jobs_per_sec > pair[0].jobs_per_sec,
                    "jobs/sec not monotone: {pair:?}"
                );
            }
        }
    }
    // The async serving section, with its own determinism gate: the
    // full report — per-class p50/p99, driver counters, and the FNV
    // digest over every record and rejection — must be bit-identical
    // across host thread counts before it is allowed into the record.
    let wfq_serial = async_wfq_report(ASYNC_TENANTS, 1);
    let wfq = async_wfq_report(ASYNC_TENANTS, 4);
    assert_eq!(
        (&wfq_serial.stats, &wfq_serial.classes, wfq_serial.digest),
        (&wfq.stats, &wfq.classes, wfq.digest),
        "async driver results depend on the host thread count"
    );
    assert!(
        wfq.stats.rejected > 0,
        "no admission backpressure exercised"
    );
    let json = fleet_json(&rtc, &sliced, &wfq);
    // The workspace root, so the trajectory file sits next to CHANGES.md.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("BENCH_fleet.json not written: {e}"),
    }
}

criterion_group!(benches, bench_fleet);

fn main() {
    emit_bench_json();
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
    criterion.final_summary();
}
