//! Criterion benches for the secure installer: end-to-end transform cost
//! per workload and the Fig. 9 mux-tree scaling series.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sofia_crypto::KeySet;
use sofia_isa::asm;
use sofia_transform::Transformer;
use sofia_workloads::{adpcm, kernels};

fn bench_transform_workloads(c: &mut Criterion) {
    let keys = KeySet::from_seed(5);
    let mut g = c.benchmark_group("transform");
    for w in [adpcm::workload(500), kernels::crc32(512), kernels::matmul()] {
        let module = w.module();
        g.bench_with_input(BenchmarkId::from_parameter(w.name), &module, |b, m| {
            let t = Transformer::new(keys.clone());
            b.iter(|| t.transform(black_box(m)).unwrap().text_bytes())
        });
    }
    g.finish();
}

fn bench_mux_tree_scaling(c: &mut Criterion) {
    // Fig. 9: cost of sealing a program whose hot function has k callers.
    let keys = KeySet::from_seed(6);
    let mut g = c.benchmark_group("mux_tree");
    for k in [2usize, 8, 32] {
        let mut src = String::from("main:\n");
        for _ in 0..k {
            src.push_str("    jal f\n");
        }
        src.push_str("    halt\nf:  ret\n");
        let module = asm::parse(&src).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(k), &module, |b, m| {
            let t = Transformer::new(keys.clone());
            b.iter(|| t.transform(black_box(m)).unwrap().report.tree_blocks)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transform_workloads, bench_mux_tree_scaling);
criterion_main!(benches);
