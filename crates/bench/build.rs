//! Bakes the compilation target triple into the bench crate so
//! `BENCH_host.json` can record the box shape its wall-clock numbers
//! came from (`TARGET` is only visible to build scripts).

fn main() {
    println!(
        "cargo:rustc-env=SOFIA_TARGET={}",
        std::env::var("TARGET").unwrap_or_default()
    );
}
