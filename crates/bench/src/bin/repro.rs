//! `repro` — regenerates every table and figure of the SOFIA paper.
//!
//! ```text
//! cargo run -p sofia-bench --bin repro --release -- all
//! cargo run -p sofia-bench --bin repro --release -- tab1 adpcm fig9
//! ```
//!
//! Experiment ids (DESIGN.md §3): `fig1 fig2 fig3 fig4 fig5 fig6 fig7
//! fig9 tab1 sec adpcm suite vcache fleet host ablate-block
//! ablate-unroll ablate-sched confid`.

use sofia_bench::{format_row, measure, measure_with, row_header};
use sofia_core::machine::SofiaMachine;
use sofia_core::timing::{store_gate_table, CipherSchedule, SofiaTiming};
use sofia_core::{security, SofiaConfig};
use sofia_cpu::machine::VanillaMachine;
use sofia_crypto::{ctr, CounterBlock, KeySet, Nonce};
use sofia_isa::{asm, disasm, Instruction};
use sofia_transform::{BlockFormat, Transformer, RESET_PREV_PC};
use sofia_workloads::{adpcm, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all" || a == "--all") {
        vec![
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig9",
            "tab1",
            "sec",
            "adpcm",
            "suite",
            "vcache",
            "fleet",
            "host",
            "backends",
            "chaos",
            "attacks",
            "ablate-block",
            "ablate-unroll",
            "ablate-sched",
            "confid",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in wanted {
        match id {
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig5" => fig56(BlockFormat::exec4(), "fig5: 4-instruction execution block"),
            "fig6" => fig56(
                BlockFormat::default(),
                "fig6: 6-instruction execution block",
            ),
            "fig7" => fig7(),
            "fig9" => fig9(),
            "tab1" => tab1(),
            "sec" | "sec-si" | "sec-cfi" => security_eval(),
            "adpcm" => adpcm_eval(),
            "suite" => suite_eval(),
            "vcache" => vcache_eval(),
            "fleet" => fleet_eval(),
            "host" => host_eval(),
            "backends" => backends_eval(),
            "chaos" => chaos_eval(),
            "attacks" => attacks_eval(),
            "ablate-block" => ablate_block(),
            "ablate-unroll" => ablate_unroll(),
            "ablate-sched" => ablate_sched(),
            "confid" => confid(),
            other => eprintln!("unknown experiment `{other}` (see DESIGN.md §3)"),
        }
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Fig. 1 — architecture walk: block-by-block fetch → decrypt → verify →
/// execute trace of a small program.
fn fig1() {
    banner("fig1: architecture trace (fetch -> decrypt -> verify -> execute)");
    let keys = KeySet::from_seed(1);
    let module = asm::parse(
        "main: li t0, 2
         loop: subi t0, t0, 1
               bnez t0, loop
               halt",
    )
    .unwrap();
    let image = Transformer::new(keys.clone()).transform(&module).unwrap();
    let mut m = SofiaMachine::new(&image, &keys);
    let mut step = 0;
    while !m.is_halted() && step < 12 {
        let target = m.next_target();
        let s = m.step_block().unwrap();
        step += 1;
        println!(
            "  block {step}: target={target:#06x}  slots executed={}  violations={}",
            s.executed_slots,
            s.violation
                .map(|v| v.to_string())
                .unwrap_or_else(|| "none".into())
        );
    }
    let st = m.stats();
    println!(
        "  total: {} blocks ({} exec, {} mux), {} CTR ops, {} CBC ops, {} cycles",
        st.blocks, st.exec_blocks, st.mux_blocks, st.ctr_ops, st.cbc_ops, st.exec.cycles
    );
}

/// Fig. 2 — valid vs invalid control-flow edge decryption.
fn fig2() {
    banner("fig2: CFG-edge-bound decryption (valid path vs invalid path)");
    let keys = KeySet::from_seed(2).expand();
    let nonce = Nonce::new(0xA5);
    let addr = |node: u32| node * 4;
    // Instruction 5 of the paper's example, encrypted on edge 2 -> 5.
    let plain = Instruction::Addi {
        rt: sofia_isa::Reg::T1,
        rs: sofia_isa::Reg::T2,
        imm: 0,
    }
    .encode();
    let good = CounterBlock::from_edge(nonce, addr(2), addr(5));
    let bad = CounterBlock::from_edge(nonce, addr(1), addr(5));
    let c = ctr::apply(&keys.ctr, good, plain);
    let via_good = ctr::apply(&keys.ctr, good, c);
    let via_bad = ctr::apply(&keys.ctr, bad, c);
    println!(
        "  I5 = {{w || 2 || 5}} (valid):   {via_good:#010x} -> {}",
        disasm::word(via_good, addr(5))
    );
    println!(
        "  I5' = {{w || 1 || 5}} (invalid): {via_bad:#010x} -> {}",
        disasm::word(via_bad, addr(5))
    );
    println!(
        "  valid edge recovers the instruction: {}",
        via_good == plain
    );
    println!(
        "  invalid edge garbles it:             {}",
        via_bad != plain
    );
}

/// Fig. 3 — stored vs run-time MAC comparison on a tampered block.
fn fig3() {
    banner("fig3: SI verification (stored MAC vs run-time MAC)");
    let keys = KeySet::from_seed(3);
    let module = asm::parse("main: li t0, 7\n halt").unwrap();
    let image = Transformer::new(keys.clone()).transform(&module).unwrap();
    let mut clean = SofiaMachine::new(&image, &keys);
    println!("  clean image:    {:?}", clean.run(1000).unwrap());
    let mut tampered = SofiaMachine::new(&image, &keys);
    tampered.mem_mut().rom_mut()[3] ^= 0x10;
    println!("  tampered image: {:?}", tampered.run(1000).unwrap());
}

/// Fig. 4 — execution-block layout.
fn fig4() {
    banner("fig4: execution block layout (M1 M2 inst1..inst6)");
    let keys = KeySet::from_seed(4);
    let module = asm::parse("main: li t0, 1\n li t1, 2\n add t2, t0, t1\n halt").unwrap();
    let image = Transformer::new(keys.clone()).transform(&module).unwrap();
    let ks = keys.expand();
    // Decrypt block 0 along the reset edge to show its structure.
    let mut prev = RESET_PREV_PC;
    for w in 0..image.format.block_words() {
        let pc = image.text_base + 4 * w as u32;
        let p = ctr::apply(
            &ks.ctr,
            CounterBlock::from_edge(image.nonce, prev, pc),
            image.ctext[w],
        );
        let role = match w {
            0 => "M1   ",
            1 => "M2   ",
            n => {
                // instruction slot n-2
                let _ = n;
                "inst "
            }
        };
        let shown = if w < 2 {
            format!("{p:#010x} (MAC word)")
        } else {
            disasm::word(p, pc)
        };
        println!("  word {w}: {role} {shown}");
        prev = pc;
    }
    println!(
        "  report: {} blocks, {} pad nops, {} B -> {} B",
        image.report.blocks,
        image.report.pad_nops,
        image.report.text_bytes_in,
        image.report.text_bytes_out
    );
}

/// Figs. 5/6 — the store gate vs block geometry.
fn fig56(format: BlockFormat, title: &str) {
    banner(title);
    let timing = SofiaTiming::default();
    println!(
        "  block = {} words, verification verdict at cycle {}",
        format.block_words(),
        timing.verify_done(&format)
    );
    println!("  slot  word  store-allowed  gate-stall(if store)");
    for row in store_gate_table(&format, &timing) {
        println!(
            "  {:>4}  {:>4}  {:>13}  {:>6}",
            row.slot, row.word_pos, row.allowed, row.stall
        );
    }
}

/// Figs. 7/8 — multiplexor block with two verified entries.
fn fig7() {
    banner("fig7/8: multiplexor block (two entries, shared M2)");
    let keys = KeySet::from_seed(7);
    let module = asm::parse(
        "main: jal f
               jal f
               halt
         f:    ret",
    )
    .unwrap();
    let image = Transformer::new(keys.clone()).transform(&module).unwrap();
    println!(
        "  mux blocks: {}, exec blocks: {}",
        image.report.mux_blocks, image.report.exec_blocks
    );
    let mut m = SofiaMachine::new(&image, &keys);
    let outcome = m.run(10_000).unwrap();
    let st = m.stats();
    println!(
        "  run: {outcome:?}; mux paths fetched {} times (7 words each vs 8 for exec)",
        st.mux_blocks
    );
}

/// Fig. 9 — multiplexor trees: cost vs number of callers.
fn fig9() {
    banner("fig9: multiplexor trees (k callers -> k-2 tree nodes)");
    println!("  callers  tree-nodes  mux-blocks  sealed-bytes  sofia-cycles");
    let keys = KeySet::from_seed(9);
    for k in [2usize, 3, 4, 6, 8, 12, 16] {
        let mut src = String::from("main:\n");
        for _ in 0..k {
            src.push_str("    jal f\n");
        }
        src.push_str("    halt\nf:  addi v0, a0, 1\n    ret\n");
        let module = asm::parse(&src).unwrap();
        let image = Transformer::new(keys.clone()).transform(&module).unwrap();
        let mut m = SofiaMachine::new(&image, &keys);
        let outcome = m.run(100_000).unwrap();
        assert!(outcome.is_halted());
        println!(
            "  {:>7}  {:>10}  {:>10}  {:>12}  {:>12}",
            k,
            image.report.tree_blocks,
            image.report.mux_blocks,
            image.text_bytes(),
            m.stats().exec.cycles
        );
    }
}

/// Table I — hardware area and clock.
fn tab1() {
    banner("tab1: hardware comparison (Table I)");
    let (v, s) = sofia_hwmodel::table1();
    println!("  Design    Slices    Clock Speed");
    println!("  Vanilla   {:>6.0}    {:.1} MHz", v.slices, v.clock_mhz());
    println!("  SOFIA     {:>6.0}    {:.1} MHz", s.slices, s.clock_mhz());
    println!(
        "  area +{:.1}% (paper: +28.2%), clock {:.1}% slower (paper: 84.6%)",
        s.area_overhead_vs(&v),
        s.clock_slowdown_vs(&v)
    );
}

/// §IV-A — security evaluation: closed forms + Monte-Carlo scaling.
fn security_eval() {
    banner("sec: security evaluation (SIV-A)");
    println!(
        "  SI : 64-bit MAC, 8 cycles/trial @50MHz -> {:.0} years (paper: 46,795)",
        security::paper_si_attack_years()
    );
    println!(
        "  CFI: divert+forge, 16 cycles/trial     -> {:.0} years (paper: 93,590)",
        security::paper_cfi_attack_years()
    );
    println!("  Monte-Carlo forgery on truncated MACs (2^16 trials each):");
    println!("  bits  accepted  expected");
    let keys = KeySet::from_seed(0x5EC);
    for c in sofia_attacks::forgery::scaling_series(&keys, &[4, 8, 12, 16], 1 << 16, 99) {
        println!(
            "  {:>4}  {:>8}  {:>8.1}",
            c.mac_bits, c.accepted, c.expected
        );
    }
}

/// §IV-B — the ADPCM benchmark table.
fn adpcm_eval() {
    banner("adpcm: MediaBench ADPCM overheads (SIV-B)");
    let keys = KeySet::from_seed(0xADC);
    let w = adpcm::workload(4000);
    let row = measure(&w, &keys);
    println!("  {}", row_header());
    println!("  {}", format_row(&row));
    // The paper's baseline was memory-bound (114 M cycles for ADPCM ->
    // CPI >> 1 from external-memory wait states); under a comparable
    // memory system the relative overhead shrinks toward the published
    // 13.7 % (EXPERIMENTS.md discusses the calibration).
    let mut paper_cfg = SofiaConfig::default();
    paper_cfg.machine.pipeline = sofia_cpu::pipeline::PipelineModel::paper_memory();
    let mut prow = measure_with(&w, &keys, BlockFormat::default(), &paper_cfg);
    prow.name = "adpcm/slowmem".into();
    println!("  {}", format_row(&prow));
    println!(
        "  paper: 6,976 B -> 16,816 B (2.41x); 114,188,673 -> 130,840,013 cycles (+13.7%); time +110%"
    );
    let s = &row.sofia;
    println!(
        "  breakdown: {} blocks, {} mac-nop slots, {} redirect-fill cyc, {} cipher-stall cyc, {} store-gate cyc, icache stalls {}",
        s.blocks,
        s.mac_nop_slots,
        s.redirect_fill_cycles,
        s.cipher_stall_cycles,
        s.store_gate_stall_cycles,
        s.exec.icache_stall_cycles
    );
}

/// Extension — the verified-block cache trajectory: vanilla vs
/// sofia-uncached vs sofia-cached cycles across the suite, plus the
/// hardware price of the cache.
fn vcache_eval() {
    banner("vcache: verified-block cache (edge-keyed, post-verification)");
    let keys = KeySet::from_seed(0xCA5E);
    let vcache = sofia_core::VCacheConfig::enabled(256, 8);
    println!(
        "  geometry: {} entries x {}-way, hit latency {}",
        vcache.entries, vcache.ways, vcache.hit_latency
    );
    println!(
        "  {:<12} {:>12} {:>12} {:>12} {:>8} {:>10} {:>8}",
        "workload", "van cycles", "uncached", "cached", "saved", "hit-rate", "misses"
    );
    for w in sofia_workloads::suite(Scale::Test) {
        let r = sofia_bench::vcache_row(&w, &keys, vcache);
        println!(
            "  {:<12} {:>12} {:>12} {:>12} {:>7.1}% {:>9.1}% {:>8}",
            r.name,
            r.vanilla_cycles,
            r.sofia_uncached_cycles,
            r.sofia_cached_cycles,
            r.reduction() * 100.0,
            100.0 * r.vcache_hits as f64 / (r.vcache_hits + r.vcache_misses).max(1) as f64,
            r.vcache_misses,
        );
    }
    let base = sofia_hwmodel::sofia(sofia_hwmodel::PAPER_UNROLL);
    let cached = sofia_hwmodel::sofia_with_vcache(sofia_hwmodel::PAPER_UNROLL, vcache.entries);
    println!(
        "  hardware: {:.0} -> {:.0} slices (+{:.1}%), clock unchanged at {:.1} MHz",
        base.slices,
        cached.slices,
        (cached.slices / base.slices - 1.0) * 100.0,
        cached.clock_mhz()
    );
}

/// Extension — multi-tenant fleet serving: the jobs/sec scaling table
/// behind `BENCH_fleet.json` (virtual-time metrics on the deterministic
/// tick-synchronous schedule model; see `sofia-fleet`'s `schedule` docs).
fn fleet_eval() {
    use sofia_bench::{fleet_scaling_series, FLEET_BENCH_SLICE};
    use sofia_fleet::SchedMode;
    banner("fleet: multi-tenant serving (mixed fib/crc32/adpcm, 24 jobs)");
    let workers = [1usize, 2, 4, 8];
    for (label, mode) in [
        ("run-to-completion", SchedMode::RunToCompletion),
        (
            "fuel-sliced",
            SchedMode::FuelSliced {
                slice: FLEET_BENCH_SLICE,
            },
        ),
    ] {
        println!("  {label}:");
        println!(
            "  {:>7} {:>16} {:>6} {:>12} {:>10}",
            "workers", "makespan(cyc)", "ticks", "jobs/sec", "speedup"
        );
        let series = fleet_scaling_series(&workers, mode);
        let base = series[0].jobs_per_sec;
        for p in &series {
            println!(
                "  {:>7} {:>16} {:>6} {:>12.1} {:>9.2}x",
                p.workers,
                p.makespan_cycles,
                p.ticks,
                p.jobs_per_sec,
                p.jobs_per_sec / base
            );
        }
    }
    println!("  (total simulated cycles are identical at every worker count — the");
    println!("   determinism invariant; jobs/sec is priced at the Table I SOFIA clock)");

    banner("fleet: async serving (WFQ admission-controlled open/closed loop)");
    // The arrival horizon scales with tenant count, so the 10k point is
    // a genuinely wider open-loop window, not a denser burst. It takes
    // minutes in debug builds — opt in via SOFIA_BENCH_FLEET_10K=1.
    let mut tenant_points = vec![1_000usize, 4_000];
    match sofia_bench::parse_fleet_10k(std::env::var("SOFIA_BENCH_FLEET_10K").ok().as_deref()) {
        Ok(true) => tenant_points.push(10_000),
        Ok(false) => {}
        Err(e) => panic!("{e}"),
    }
    for tenants in tenant_points {
        let serial = sofia_bench::async_wfq_report(tenants, 1);
        let report = sofia_bench::async_wfq_report(tenants, 4);
        assert_eq!(
            (&serial.stats, &serial.classes, serial.digest),
            (&report.stats, &report.classes, report.digest),
            "async driver results depend on the host thread count"
        );
        let s = report.stats;
        println!(
            "  {tenants} tenants: {} finished, {} rejected, {} ticks, makespan {} cyc",
            s.finished, s.rejected, s.ticks, s.makespan_cycles
        );
        println!(
            "    parks {} / revives {} / peak resident machines {}  digest {:#018x}",
            s.parks, s.revives, s.peak_resident_machines, report.digest
        );
        println!(
            "    {:>12} {:>7} {:>8} {:>9} {:>15} {:>15}",
            "class", "weight", "finished", "rejected", "p50 sojourn", "p99 sojourn"
        );
        for c in &report.classes {
            println!(
                "    {:>12} {:>7} {:>8} {:>9} {:>15} {:>15}",
                c.label,
                c.weight,
                c.finished,
                c.rejected,
                c.p50_sojourn_cycles,
                c.p99_sojourn_cycles
            );
        }
    }
    println!("  (bit-identical at 1 and 4 host threads — asserted above; latency is");
    println!("   virtual-time sojourn on the tick-synchronous schedule model)");
}

/// Extension — host throughput: the wall-clock table behind
/// `BENCH_host.json` (re-emitted by this experiment, so the CI release
/// step keeps the record at release-build figures).
fn host_eval() {
    banner("host: host-side throughput (wall clock on this machine)");
    let report = sofia_bench::host_report(3);
    let b = &report.box_shape;
    println!(
        "  box: {} logical core{}, {} / {} ({})",
        b.logical_cores,
        if b.logical_cores == 1 { "" } else { "s" },
        b.arch,
        b.os,
        b.target
    );
    let k = &report.keystream;
    println!(
        "  keystream ({} blocks): scalar {:>10.0} blk/s   bitsliced {:>10.0} blk/s   {:>5.2}x",
        k.blocks,
        k.scalar_blocks_per_sec,
        k.bitsliced_blocks_per_sec,
        k.speedup()
    );
    for w in &k.widths {
        println!(
            "    {:>2} lanes{} {:>10.0} blk/s   {:>5.2}x vs scalar",
            w.lanes,
            if w.lanes == k.default_lanes {
                " (default)"
            } else {
                "          "
            },
            w.blocks_per_sec,
            w.blocks_per_sec / k.scalar_blocks_per_sec
        );
    }
    let s = &report.seal;
    println!(
        "  seal ({}):      scalar {:>10.2} seal/s  bitsliced {:>10.2} seal/s  {:>5.2}x",
        s.workload,
        s.scalar_seals_per_sec,
        s.bitsliced_seals_per_sec,
        s.speedup()
    );
    println!("  seal farm (cold wave, adpcm240 x distinct tenant keys):");
    println!("    workers  images  seals/sec  speedup");
    let serial = report
        .seal_farm
        .iter()
        .find(|p| p.workers == 1)
        .map(|p| p.seals_per_sec);
    for p in &report.seal_farm {
        println!(
            "    {:>7}  {:>6}  {:>9.2}  {:>6.2}x",
            p.workers,
            p.images,
            p.seals_per_sec,
            p.seals_per_sec / serial.unwrap_or(p.seals_per_sec)
        );
    }
    println!("  simulation speed (fib5000):");
    for r in &report.mips {
        println!(
            "    {:<16} {:>8.2} host MIPS ({} slots)",
            r.machine, r.mips, r.instret
        );
    }
    println!("  fleet host throughput (mix24, fuel-sliced):");
    println!("    workers  pool      jobs/sec");
    for p in &report.fleet {
        println!(
            "    {:>7}  {:<8} {:>9.2}",
            p.workers, p.pool, p.jobs_per_sec
        );
    }
    println!("  (wall-clock, informational: scaling needs real cores; simulated-cycle");
    println!("   trajectories live in BENCH_vcache.json / BENCH_fleet.json)");
    sofia_bench::write_host_json(&sofia_bench::host_json(&report));
}

/// Extension — the cross-backend comparison: SOFIA vs the sponge-CFP
/// and FIPAC fetch units on cycles, area, detection latency and the
/// attack matrix (emits `BENCH_backends.json`).
fn backends_eval() {
    banner("backends: pluggable integrity backends (sofia / sponge-CFP / FIPAC)");
    let keys = KeySet::from_seed(0x5EC6);
    let w = sofia_workloads::kernels::crc32(512);
    let report = sofia_bench::backends_report(&w, &keys);

    println!(
        "  cycle overhead ({}, vanilla {} cycles):",
        report.workload, report.vanilla_cycles
    );
    for p in &report.overhead {
        println!(
            "    {:<8} {:>12} cycles  {:>+8.1}%",
            p.backend, p.cycles, p.overhead_pct
        );
    }
    println!("  hardware (Table-I model):");
    for p in &report.hardware {
        println!(
            "    {:<8} {:>6.0} slices  {:>6.1} MHz  area {:>+7.1}%",
            p.backend, p.slices, p.clock_mhz, p.area_overhead_pct
        );
    }
    println!(
        "  detection latency ({}-word sled, tamper at word {}):",
        sofia_bench::BACKENDS_SLED_WORDS,
        sofia_bench::BACKENDS_TAMPER_WORD
    );
    for p in &report.detection {
        println!(
            "    {:<8} {:>4} instructions retired before the flag",
            p.backend, p.latency_instructions
        );
    }
    println!("  attack matrix:");
    println!(
        "    {:<16} {:<22} {:<22} {:<22}",
        "attack", "sofia", "sponge", "fipac"
    );
    for row in &report.matrix {
        println!(
            "    {:<16} {:<22} {:<22} {:<22}",
            row.attack,
            row.sofia.label(),
            row.sponge.label(),
            row.fipac.label()
        );
    }
    println!("  (sponge: implicit detection, serial permute on the fetch path; FIPAC:");
    println!("   plaintext fetch at the vanilla clock, detection deferred to the next");
    println!("   signature point — the latency column is the price of that deferral)");
    sofia_bench::write_backends_json(&sofia_bench::backends_json(&report));
}

/// Extension — chaos & resilience: the serving workload under seeded
/// host-fault injection with the self-healing ladder armed, across a
/// fault-rate sweep (emits `BENCH_chaos.json`). Every point asserts
/// bit-identical results at 1 and 4 host threads, and the zero-fault
/// point asserts bit-identical records against a driver without the
/// chaos/resilience machinery — the `ChaosPlan::none()` invisibility
/// invariant at bench scale.
fn chaos_eval() {
    banner("chaos: host-fault injection + self-healing fleet (sweep 0 / 1e-3 / 1e-2)");
    let report = sofia_bench::chaos_report(4);
    println!(
        "  {} honest tenants + {} storm tenants, seed {:#x}",
        report.tenants, report.storm_tenants, report.seed
    );
    println!(
        "  {:>8} {:>7} {:>7} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6}",
        "rate_ppm", "avail", "miss", "faults", "retry", "shed", "late", "break", "mttr", "degr"
    );
    for p in &report.points {
        let r = p.res;
        println!(
            "  {:>8} {:>7.4} {:>7.4} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7.1} {:>6}",
            p.rate_ppm,
            p.availability,
            p.deadline_miss_rate,
            r.faults_injected,
            r.retries_scheduled,
            r.deadline_shed + r.load_shed,
            r.deadline_late,
            r.breaker_opens,
            p.mttr_ticks,
            r.vcache_off_tenants + r.scalar_fallbacks + r.inline_seal_fallbacks,
        );
        for c in &p.classes {
            println!(
                "           {:>12}: {:>5} finished, p50 {:>8}, p99 {:>8}  (cycles)",
                c.label, c.finished, c.p50_sojourn_cycles, c.p99_sojourn_cycles
            );
        }
    }
    let zero = &report.points[0];
    assert_eq!(
        zero.availability, 1.0,
        "zero fault rate must serve everything it accepted"
    );
    println!("  (bit-identical at 1 and 4 host threads at every rate; the zero point is");
    println!("   bit-identical to a driver without the chaos/resilience machinery)");
    sofia_bench::write_chaos_json(&sofia_bench::chaos_json(&report));
}

fn attacks_eval() {
    banner("attacks: fleet-scale attack economics (campaigns per quarantine policy)");
    let report = sofia_bench::attacks_report(4);
    println!(
        "  {} honest tenants, {} admitted probes, {} forgery trials/length",
        sofia_bench::ATTACKS_BENCH_HONEST_TENANTS,
        sofia_bench::ATTACKS_BENCH_PROBES,
        sofia_bench::ATTACKS_BENCH_TRIALS,
    );
    println!(
        "  {:>18} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "policy", "probes", "detect", "success", "queries", "release", "ident", "avail", "q/probe"
    );
    for row in &report.rows {
        let p = &row.probe;
        println!(
            "  {:>18} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7} {:>7.4} {:>7}",
            row.label,
            p.probes_admitted,
            p.detections,
            p.successes,
            p.oracle_queries,
            p.releases,
            p.identities_burned,
            p.bystander_availability,
            row.profile.queries_per_probe,
        );
        assert_eq!(
            p.successes, 0,
            "a probe slipped through under {}",
            row.label
        );
        for f in &row.forgery {
            let c = f.campaign;
            println!(
                "      mac {:>2} bits: {:>5}/{:<5} trials, {:>3} accepted (rate {:.6}), \
                 ~{:.3e} probes to win",
                c.mac_bits,
                c.completed,
                c.trials,
                c.accepted,
                c.measured_rate(),
                f.work.probes,
            );
        }
        let full = row
            .forgery
            .iter()
            .find(|f| f.campaign.mac_bits == 64)
            .expect("64-bit row");
        assert_eq!(full.campaign.accepted, 0, "64-bit MAC forgery accepted");
        for m in &row.migration.rows {
            println!(
                "      migrate {:>22}: {:<20} tenant {:?}",
                m.variant.label(),
                m.outcome.label(),
                m.tenant_after,
            );
        }
        println!(
            "      expected work at 64 bits: {:.3e} oracle queries, {:.3e} probes, \
             {:.3e} identities, {:.3e} wall ticks",
            row.expected_work_64.oracle_queries,
            row.expected_work_64.probes,
            row.expected_work_64.identities,
            row.expected_work_64.wall_ticks,
        );
    }
    println!(
        "  digest {:#018x}  (bit-identical at 1 and 4 host threads)",
        report.digest
    );
    sofia_bench::write_attacks_json(&sofia_bench::attacks_json(&report));
}

/// Extension — the same overheads across the whole kernel suite.
fn suite_eval() {
    banner("suite: overheads across all workloads (extension)");
    let keys = KeySet::from_seed(0x517E);
    println!("  {}", row_header());
    for w in sofia_workloads::suite(Scale::Bench) {
        let row = measure(&w, &keys);
        println!("  {}", format_row(&row));
    }
}

/// Ablation — exec6-with-restriction vs exec4-no-restriction (Figs. 5/6
/// as an end-to-end trade-off).
fn ablate_block() {
    banner("ablate-block: 6-inst (restricted stores) vs 4-inst blocks");
    let keys = KeySet::from_seed(0xB10C);
    let w = adpcm::workload(1000);
    println!("  {}", row_header());
    for (label, format) in [
        ("exec6", BlockFormat::default()),
        ("exec4", BlockFormat::exec4()),
    ] {
        let mut row = measure_with(&w, &keys, format, &SofiaConfig::default());
        row.name = format!("adpcm/{label}");
        println!("  {}", format_row(&row));
    }
}

/// Ablation — cipher unrolling factor: area, clock and end-to-end time.
fn ablate_unroll() {
    banner("ablate-unroll: cipher unrolling (area/clock/time trade-off)");
    let keys = KeySet::from_seed(0xA11);
    let w = adpcm::workload(1000);
    let vrow = measure(&w, &keys); // vanilla cycles reused
    let vperiod = sofia_hwmodel::vanilla().period_ns;
    let vanilla_time = vrow.vanilla_cycles as f64 * vperiod;
    println!("  unroll  slices  clock(MHz)  cyc/op  sofia-cycles  time-overhead");
    for hw in sofia_hwmodel::unroll_sweep() {
        let timing = SofiaTiming {
            cipher_issue_interval: if hw.pipelined { 1 } else { hw.cycles_per_op },
            cipher_latency: hw.cycles_per_op.max(1),
            ..Default::default()
        };
        let config = SofiaConfig {
            timing,
            ..Default::default()
        };
        let row = measure_with(&w, &keys, BlockFormat::default(), &config);
        let time = row.sofia_cycles as f64 * hw.period_ns;
        println!(
            "  {:>6}  {:>6.0}  {:>10.1}  {:>6}  {:>12}  {:>+12.1}%",
            hw.unroll,
            hw.slices,
            hw.clock_mhz(),
            hw.cycles_per_op,
            row.sofia_cycles,
            (time / vanilla_time - 1.0) * 100.0
        );
    }
    println!("  (the paper's 13x point minimises end-to-end time: fewer cipher stalls than");
    println!("   iterated designs, less clock loss than single-cycle)");
}

/// Ablation — CTR scheduling granularity.
fn ablate_sched() {
    banner("ablate-sched: CTR op granularity (paper 2-words/op vs per-word)");
    let keys = KeySet::from_seed(0x5CED);
    let w = adpcm::workload(1000);
    println!("  {}", row_header());
    for (label, schedule) in [
        ("paper", CipherSchedule::Paper),
        ("per-word", CipherSchedule::PerWord),
    ] {
        let config = SofiaConfig {
            timing: SofiaTiming {
                schedule,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut row = measure_with(&w, &keys, BlockFormat::default(), &config);
        row.name = format!("adpcm/{label}");
        println!("  {}", format_row(&row));
    }
}

/// §I claim — code confidentiality of the sealed image.
fn confid() {
    banner("confid: code confidentiality (copyright protection)");
    let keys = KeySet::from_seed(0xC0DE);
    let w = adpcm::workload(500);
    let plain = w.assembly().words;
    let image = w.secure_image(&keys);
    let r = sofia_attacks::confidentiality::analyze(&plain, &image.ctext);
    println!("  plaintext entropy:  {:.2} bits/byte", r.plain_entropy);
    println!("  ciphertext entropy: {:.2} bits/byte", r.cipher_entropy);
    println!(
        "  legal-instruction fraction: plain {:.3}, cipher {:.3}",
        r.plain_legal_fraction, r.cipher_legal_fraction
    );
    println!("  identical words plain-vs-cipher: {}", r.matching_words);
    // Version separation under a fresh nonce.
    let module = w.module();
    let v2 = Transformer::new(keys.clone())
        .with_nonce(Nonce::new(2))
        .transform(&module)
        .unwrap();
    println!(
        "  ciphertext shared between versions (nonce 1 vs 2): {:.4}",
        sofia_attacks::confidentiality::shared_ciphertext_fraction(&image.ctext, &v2.ctext)
    );
    // A vanilla machine pointed at the ciphertext goes nowhere.
    let mut m = VanillaMachine::new(&sofia_isa::asm::Assembly {
        text_base: image.text_base,
        words: image.ctext.clone(),
        data_base: image.data_base,
        data: image.data.clone(),
        symbols: Default::default(),
        entry: image.text_base,
    });
    match m.run(10_000) {
        Err(t) => println!("  executing ciphertext on a plain core: trap `{t}`"),
        Ok(o) => println!("  executing ciphertext on a plain core: {o:?}"),
    }
}
