//! # sofia-bench — measurement helpers for the reproduction harness
//!
//! Shared machinery for the `repro` binary (which regenerates every table
//! and figure of the paper, see `DESIGN.md` §3) and the Criterion
//! benches: run a workload on both machines under arbitrary
//! configurations and reduce the statistics to the paper's metrics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Same wall as `sofia-fleet`: measurement code is the evidence chain for
// every number the repo publishes, and a bare `unwrap`/`expect` dies
// without saying *which* workload or machine misbehaved. Non-test code
// panics through `unwrap_or_else` with the failing value in the message.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use sofia_core::machine::SofiaMachine;
use sofia_core::{SofiaConfig, SofiaStats, VCacheConfig};
use sofia_cpu::machine::VanillaMachine;
use sofia_cpu::ExecStats;
use sofia_crypto::KeySet;
use sofia_transform::{BlockFormat, TransformReport, Transformer};
use sofia_workloads::Workload;

/// Fuel for measurement runs.
pub const FUEL: u64 = 500_000_000;

/// One row of a §IV-B-style overhead table.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Workload name.
    pub name: String,
    /// Plain text-section size in bytes.
    pub text_in: usize,
    /// Sealed text-section size in bytes.
    pub text_out: usize,
    /// Baseline cycles.
    pub vanilla_cycles: u64,
    /// SOFIA cycles.
    pub sofia_cycles: u64,
    /// Full SOFIA statistics (for breakdowns).
    pub sofia: SofiaStats,
    /// Baseline statistics.
    pub vanilla: ExecStats,
    /// Transformation report.
    pub report: TransformReport,
}

impl OverheadRow {
    /// Code-size expansion factor (paper: 2.41× for ADPCM).
    pub fn expansion(&self) -> f64 {
        self.text_out as f64 / self.text_in as f64
    }

    /// Cycle overhead in percent (paper: 13.7 % for ADPCM).
    pub fn cycle_overhead_pct(&self) -> f64 {
        (self.sofia_cycles as f64 / self.vanilla_cycles as f64 - 1.0) * 100.0
    }

    /// Total execution-time overhead in percent, combining cycles with
    /// the Table I clocks (paper: 110 % for ADPCM).
    pub fn time_overhead_pct(&self) -> f64 {
        let (v, s) = sofia_hwmodel::table1();
        let vanilla_time = self.vanilla_cycles as f64 * v.period_ns;
        let sofia_time = self.sofia_cycles as f64 * s.period_ns;
        (sofia_time / vanilla_time - 1.0) * 100.0
    }
}

/// Runs `workload` on both machines with the given SOFIA configuration
/// and block format, verifying outputs against the golden model.
///
/// # Panics
///
/// Panics if either machine misbehaves — measurement runs must be
/// correct runs.
pub fn measure_with(
    workload: &Workload,
    keys: &KeySet,
    format: BlockFormat,
    config: &SofiaConfig,
) -> OverheadRow {
    // Vanilla (same baseline machine parameters as the SOFIA config, so
    // the comparison isolates the security architecture).
    let assembly = workload.assembly();
    let mut vm = VanillaMachine::with_config(&assembly, &config.machine);
    let vr = vm
        .run(FUEL)
        .unwrap_or_else(|e| panic!("vanilla run traps: {e:?}"));
    assert!(vr.is_halted(), "{}: vanilla did not halt", workload.name);
    assert_eq!(
        vm.mem().mmio.out_words,
        workload.expected,
        "{}: vanilla output mismatch",
        workload.name
    );

    // SOFIA.
    let image = Transformer::new(keys.clone())
        .with_format(format)
        .transform(&workload.module())
        .unwrap_or_else(|e| panic!("workload transforms: {e:?}"));
    let report = image.report.clone();
    let mut sm = SofiaMachine::with_config(&image, keys, config);
    let sr = sm
        .run(FUEL)
        .unwrap_or_else(|e| panic!("sofia run traps: {e:?}"));
    assert!(sr.is_halted(), "{}: sofia outcome {sr:?}", workload.name);
    assert_eq!(
        sm.mem().mmio.out_words,
        workload.expected,
        "{}: sofia output mismatch",
        workload.name
    );

    OverheadRow {
        name: workload.name.to_string(),
        text_in: assembly.text_bytes(),
        text_out: image.text_bytes(),
        vanilla_cycles: vm.stats().cycles,
        sofia_cycles: sm.stats().exec.cycles,
        sofia: sm.stats(),
        vanilla: vm.stats(),
        report,
    }
}

/// [`measure_with`] under default configuration and block format.
pub fn measure(workload: &Workload, keys: &KeySet) -> OverheadRow {
    measure_with(
        workload,
        keys,
        BlockFormat::default(),
        &SofiaConfig::default(),
    )
}

/// Formats a row of the overhead table.
pub fn format_row(r: &OverheadRow) -> String {
    format!(
        "{:<12} {:>8} B {:>8} B  {:>5.2}x {:>12} {:>12} {:>+8.1}% {:>+8.1}%",
        r.name,
        r.text_in,
        r.text_out,
        r.expansion(),
        r.vanilla_cycles,
        r.sofia_cycles,
        r.cycle_overhead_pct(),
        r.time_overhead_pct(),
    )
}

/// Header matching [`format_row`].
pub fn row_header() -> String {
    format!(
        "{:<12} {:>10} {:>10}  {:>6} {:>12} {:>12} {:>9} {:>9}",
        "workload", "text", "sealed", "exp", "van cycles", "sofia cyc", "cyc ovh", "time ovh"
    )
}

/// One row of the verified-block-cache trajectory: the same workload's
/// cycle count on the vanilla machine, the uncached SOFIA machine, and
/// the cached SOFIA machine.
#[derive(Clone, Debug)]
pub struct VCacheRow {
    /// Workload name.
    pub name: String,
    /// Baseline cycles.
    pub vanilla_cycles: u64,
    /// SOFIA cycles with the cache disabled.
    pub sofia_uncached_cycles: u64,
    /// SOFIA cycles with the cache enabled.
    pub sofia_cached_cycles: u64,
    /// Cache hits / misses of the cached run.
    pub vcache_hits: u64,
    /// Cache misses of the cached run.
    pub vcache_misses: u64,
}

impl VCacheRow {
    /// Fraction of the uncached SOFIA cycles the cache recovered.
    pub fn reduction(&self) -> f64 {
        1.0 - self.sofia_cached_cycles as f64 / self.sofia_uncached_cycles as f64
    }
}

/// Measures `workload` on all three machines under `vcache` (simulated
/// cycles: deterministic, host-independent).
///
/// # Panics
///
/// Panics if any machine misbehaves — measurement runs must be correct
/// runs.
pub fn vcache_row(workload: &Workload, keys: &KeySet, vcache: VCacheConfig) -> VCacheRow {
    let vanilla = workload
        .verify_on_vanilla()
        .unwrap_or_else(|e| panic!("vanilla verifies: {e:?}"))
        .cycles;
    let image = workload.secure_image(keys);
    let mut uncached = SofiaMachine::new(&image, keys);
    assert!(uncached
        .run(FUEL)
        .unwrap_or_else(|e| panic!("uncached traps: {e:?}"))
        .is_halted());
    let config = SofiaConfig {
        vcache,
        ..Default::default()
    };
    let mut cached = SofiaMachine::with_config(&image, keys, &config);
    assert!(cached
        .run(FUEL)
        .unwrap_or_else(|e| panic!("cached traps: {e:?}"))
        .is_halted());
    assert_eq!(
        cached.mem().mmio.out_words,
        workload.expected,
        "{}: cached output mismatch",
        workload.name
    );
    let cs = cached.stats();
    VCacheRow {
        name: workload.name.to_string(),
        vanilla_cycles: vanilla,
        sofia_uncached_cycles: uncached.stats().exec.cycles,
        sofia_cached_cycles: cs.exec.cycles,
        vcache_hits: cs.vcache_hits,
        vcache_misses: cs.vcache_misses,
    }
}

/// Serialises rows to the `BENCH_vcache.json` schema: a stable,
/// machine-independent record of the perf trajectory (simulated cycles
/// only — no wall-clock noise).
pub fn vcache_rows_json(vcache: VCacheConfig, rows: &[VCacheRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"vcache\",\n");
    out.push_str(&format!(
        "  \"vcache\": {{ \"entries\": {}, \"ways\": {}, \"hit_latency\": {} }},\n",
        vcache.entries, vcache.ways, vcache.hit_latency
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"vanilla_cycles\": {}, \"sofia_uncached_cycles\": {}, \
             \"sofia_cached_cycles\": {}, \"vcache_hits\": {}, \"vcache_misses\": {}, \
             \"reduction_pct\": {:.2} }}{}\n",
            r.name,
            r.vanilla_cycles,
            r.sofia_uncached_cycles,
            r.sofia_cached_cycles,
            r.vcache_hits,
            r.vcache_misses,
            r.reduction() * 100.0,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One point of the fleet scaling experiment: the mixed tenant workload
/// priced at a given worker count.
///
/// All numbers are **simulated** (virtual-time makespan at the Table I
/// SOFIA clock) — deterministic and host-independent, like every other
/// trajectory number this repo records. In particular they are honest on
/// a single-core CI box, where host wall-clock could never show scaling.
#[derive(Clone, Debug)]
pub struct FleetScalingPoint {
    /// Worker count of pool and schedule model.
    pub workers: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Virtual-time makespan in simulated cycles.
    pub makespan_cycles: u64,
    /// Scheduler ticks the batch took.
    pub ticks: u64,
    /// Total simulated cycles across all jobs (worker-count-invariant —
    /// the determinism invariant in one number).
    pub total_cycles: u64,
    /// Jobs per second at the Table I SOFIA clock.
    pub jobs_per_sec: f64,
}

/// The fleet experiment's mixed tenant mix: three tenants (fib, crc32,
/// ADPCM — the short/medium/long families), eight jobs each, four
/// distinct program sizes per tenant submitted twice so the seal cache
/// sees both cold and warm installs. 24 jobs, largest under 10 % of the
/// batch, so makespan keeps improving through 4 workers.
pub fn fleet_mix() -> Vec<sofia_fleet::JobSpec> {
    use sofia_fleet::{JobSpec, TenantId};
    let fib = |n| sofia_workloads::kernels::fib(n).source;
    let crc = |n| sofia_workloads::kernels::crc32(n).source;
    let adpcm = |n| sofia_workloads::adpcm::workload(n).source;
    let mut specs = Vec::new();
    for _round in 0..2 {
        for n in [200u32, 400, 600, 800] {
            specs.push(JobSpec::new(TenantId(1), fib(n), 50_000_000));
        }
        for n in [32usize, 48, 64, 80] {
            specs.push(JobSpec::new(TenantId(2), crc(n), 50_000_000));
        }
        for n in [40usize, 60, 80, 100] {
            specs.push(JobSpec::new(TenantId(3), adpcm(n), 50_000_000));
        }
    }
    specs
}

/// Registers the [`fleet_mix`] tenants on a fresh fleet.
///
/// # Panics
///
/// Panics on double registration — a harness bug.
pub fn fleet_mix_tenants(fleet: &mut sofia_fleet::Fleet) {
    use sofia_fleet::TenantId;
    for (id, seed) in [(1u32, 0xF1Bu64), (2, 0xC3C32), (3, 0xADBC)] {
        fleet
            .register_tenant(TenantId(id), KeySet::from_seed(seed))
            .unwrap_or_else(|e| panic!("fresh fleet: {e:?}"));
    }
}

/// Runs the [`fleet_mix`] at one worker count and scheduling mode.
///
/// # Panics
///
/// Panics if any job of the mix fails to halt — measurement runs must be
/// correct runs.
pub fn fleet_scaling_point(workers: usize, mode: sofia_fleet::SchedMode) -> FleetScalingPoint {
    use sofia_fleet::{Fleet, FleetConfig};
    let mut fleet = Fleet::new(FleetConfig {
        workers,
        mode,
        ..Default::default()
    });
    fleet_mix_tenants(&mut fleet);
    let specs = fleet_mix();
    let jobs = specs.len();
    for spec in specs {
        fleet
            .submit(spec)
            .unwrap_or_else(|e| panic!("mix tenants are registered: {e:?}"));
    }
    let records = fleet.run_batch();
    for r in &records {
        assert!(r.outcome.is_halted(), "{}: {:?}", r.job, r.outcome);
    }
    let stats = fleet.stats();
    let (_, sofia_hw) = sofia_hwmodel::table1();
    let makespan_secs = stats.last_makespan_cycles as f64 * sofia_hw.period_ns * 1e-9;
    FleetScalingPoint {
        workers,
        jobs,
        makespan_cycles: stats.last_makespan_cycles,
        ticks: stats.last_ticks,
        total_cycles: stats.total().cycles,
        jobs_per_sec: jobs as f64 / makespan_secs,
    }
}

/// [`fleet_scaling_point`] across several worker counts.
pub fn fleet_scaling_series(
    workers: &[usize],
    mode: sofia_fleet::SchedMode,
) -> Vec<FleetScalingPoint> {
    workers
        .iter()
        .map(|&w| fleet_scaling_point(w, mode))
        .collect()
}

/// The fuel slice the fleet experiment runs its preemptive mode at.
pub const FLEET_BENCH_SLICE: u64 = 2_000;

// ---------------------------------------------------------------------
// Async serving (`BENCH_fleet.json` § "async_wfq")
//
// The 1k-tenant open/closed-loop workload for the `AsyncFleet` driver:
// three weighted service classes, deterministic LCG arrivals, admission
// caps tight enough to produce typed rejections. All latency figures are
// virtual-time (simulated cycles on the tick-synchronous model), so the
// per-class p50/p99 rows reproduce bit-for-bit on any host at any
// `threads` count — the bench asserts exactly that before emitting.
// ---------------------------------------------------------------------

/// The fuel slice the async serving experiment runs at — short enough
/// that the WFQ scheduler interleaves classes within single jobs.
pub const ASYNC_BENCH_SLICE: u64 = 150;

/// Virtual lanes the async serving experiment multiplexes onto.
pub const ASYNC_BENCH_WORKERS: usize = 8;

/// One service class's latency roll-up from the async workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsyncWfqClassRow {
    /// Raw class id.
    pub class: u8,
    /// Human label ("interactive" / "batch" / "best_effort").
    pub label: &'static str,
    /// WFQ weight.
    pub weight: u64,
    /// Tenants registered into the class.
    pub tenants: usize,
    /// Jobs that ran to a record.
    pub finished: usize,
    /// Typed admission rejections charged to the class.
    pub rejected: usize,
    /// Median sojourn (arrival → completion) in simulated cycles.
    pub p50_sojourn_cycles: u64,
    /// 99th-percentile sojourn in simulated cycles.
    pub p99_sojourn_cycles: u64,
}

/// The async serving experiment's result: driver counters, per-class
/// latency rows, and an order-sensitive FNV-1a digest over every record
/// and rejection — one number that must match across thread counts.
#[derive(Clone, Debug, PartialEq)]
pub struct AsyncWfqReport {
    /// Tenants registered.
    pub tenants: usize,
    /// Host OS threads the driver multiplexed over.
    pub threads: usize,
    /// Driver counters at drain.
    pub stats: sofia_fleet::AsyncStats,
    /// Per-class rows, ascending class id.
    pub classes: Vec<AsyncWfqClassRow>,
    /// FNV-1a over all records and rejections, in completion order.
    pub digest: u64,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100000001b3);
    }
}

/// A short counted loop that stores its (zero) counter on the MMIO word
/// port — the async workload's unit of work, sized by `n`.
fn wfq_job_src(n: u32) -> String {
    format!(
        "main: li t0, {n}
         loop: subi t0, t0, 1
               bnez t0, loop
               li a0, 0xFFFF0000
               sw t0, 0(a0)
               halt"
    )
}

/// Runs the async serving workload: `tenants` tenants split 70/20/10
/// over three classes —
///
/// * **interactive** (weight 8, open loop): two short jobs per tenant,
///   arrival ticks drawn from a deterministic LCG over a 400-tick
///   horizon;
/// * **batch** (weight 2, closed loop): three medium jobs per tenant,
///   each resubmitted the tick its predecessor completes;
/// * **best_effort** (weight 1, open loop, bursty): one job per tenant,
///   the whole class arriving at tick zero against a class queue cap of
///   half the class — the admission-control rejection pressure.
///
/// # Panics
///
/// Panics if the workload produces zero rejections or any non-halted
/// record — the experiment must exercise both admission backpressure
/// and clean completion.
pub fn async_wfq_report(tenants: usize, threads: usize) -> AsyncWfqReport {
    use sofia_fleet::{
        AdmissionConfig, AsyncConfig, AsyncFleet, ClassConfig, ClassId, JobSpec, SchedMode,
        TenantId,
    };
    use std::collections::BTreeMap;
    assert!(
        tenants >= 20,
        "the 70/20/10 split needs at least 20 tenants"
    );
    let n_interactive = tenants * 7 / 10;
    let n_batch = tenants * 2 / 10;
    let n_best = tenants - n_interactive - n_batch;

    const CLASS_META: [(u8, &str, u64); 3] = [
        (0, "interactive", 8),
        (1, "batch", 2),
        (2, "best_effort", 1),
    ];
    let mut admission = AdmissionConfig::default();
    for (id, _, weight) in CLASS_META {
        admission.classes.insert(
            id,
            ClassConfig {
                weight,
                ..Default::default()
            },
        );
    }
    // The backpressure knob: the best-effort burst (the whole class at
    // tick zero) must not fit — half of it is turned away, typed.
    if let Some(best) = admission.classes.get_mut(&2) {
        best.queue_cap = (n_best / 2).max(1);
    }
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads,
        workers: ASYNC_BENCH_WORKERS,
        mode: SchedMode::FuelSliced {
            slice: ASYNC_BENCH_SLICE,
        },
        admission,
        ..Default::default()
    });

    let class_of = |id: u32| -> u8 {
        let id = id as usize - 1;
        if id < n_interactive {
            0
        } else if id < n_interactive + n_batch {
            1
        } else {
            2
        }
    };
    for id in 1..=tenants as u32 {
        fleet
            .register_tenant(
                TenantId(id),
                KeySet::from_seed(0x5EED_0000 + id as u64),
                ClassId(class_of(id)),
            )
            .unwrap_or_else(|e| panic!("fresh driver: {e:?}"));
    }

    // Deterministic arrival generator (64-bit LCG, fixed seed).
    let mut lcg: u64 = 0x2545F491_4F6CDD1D;
    let mut draw = move |bound: u64| {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (lcg >> 33) % bound
    };

    // The arrival horizon scales with the fleet: the pinned 1k-tenant
    // point keeps its historical 400-tick window, and larger fleets
    // spread their open-loop arrivals proportionally instead of
    // compressing ever more load into a fixed window (which would turn
    // a 10k-tenant run into a pure tick-zero burst).
    let horizon: u64 = 400u64.max(400 * tenants as u64 / 1000);
    let batch_job = |id: u32, round: u32| {
        JobSpec::new(
            TenantId(id),
            wfq_job_src(120 + (id % 7) * 10 + round * 3),
            200_000,
        )
    };
    // Open-loop arrivals, pre-loaded.
    for id in 1..=tenants as u32 {
        match class_of(id) {
            0 => {
                for _ in 0..2 {
                    let spec = JobSpec::new(TenantId(id), wfq_job_src(8 + (id % 16)), 100_000);
                    let tick = draw(horizon);
                    fleet.submit_at(spec, tick);
                }
            }
            1 => {
                // Closed loop: the first job arrives at once; rounds 1–2
                // are resubmitted on completion below.
                fleet.submit_at(batch_job(id, 0), draw(8));
            }
            _ => {
                let spec = JobSpec::new(TenantId(id), wfq_job_src(40 + (id % 11)), 150_000);
                fleet.submit_at(spec, 0);
            }
        }
    }

    // Drive the clock; feed the closed loop as its jobs complete.
    let mut rounds_left: BTreeMap<u32, u32> = (1..=tenants as u32)
        .filter(|&id| class_of(id) == 1)
        .map(|id| (id, 2))
        .collect();
    let mut records = Vec::new();
    loop {
        fleet.tick();
        for r in fleet.drain_finished() {
            if let Some(left) = rounds_left.get_mut(&r.tenant.0) {
                if *left > 0 {
                    let round = 3 - *left;
                    *left -= 1;
                    fleet
                        .submit(batch_job(r.tenant.0, round))
                        .unwrap_or_else(|e| {
                            panic!("closed-loop batch tenant is active and under quota: {e:?}")
                        });
                }
            }
            records.push(r);
        }
        if fleet.queued_jobs() == 0 && fleet.pending_arrivals() == 0 {
            break;
        }
    }
    let rejections = fleet.drain_rejected();
    assert!(
        !rejections.is_empty(),
        "the best-effort burst must trip admission control"
    );
    for r in &records {
        assert!(r.outcome.is_halted(), "{}: {:?}", r.job, r.outcome);
    }

    // The determinism digest: everything each record and rejection
    // claims, in completion order.
    let mut digest: u64 = 0xcbf29ce484222325;
    for r in &records {
        for word in [
            r.job.0,
            r.tenant.0 as u64,
            r.stats.exec.cycles,
            r.stats.exec.instret,
            r.arrival_tick,
            r.start_tick,
            r.end_tick,
            r.sojourn_cycles,
            r.slices as u64,
        ] {
            fnv1a(&mut digest, &word.to_le_bytes());
        }
        fnv1a(&mut digest, format!("{:?}", r.outcome).as_bytes());
        for w in &r.out_words {
            fnv1a(&mut digest, &w.to_le_bytes());
        }
    }
    for rej in &rejections {
        fnv1a(&mut digest, &rej.job.0.to_le_bytes());
        fnv1a(&mut digest, &rej.tick.to_le_bytes());
        fnv1a(&mut digest, format!("{}", rej.error).as_bytes());
    }

    let tenant_counts = [n_interactive, n_batch, n_best];
    let classes = CLASS_META
        .iter()
        .map(|&(class, label, weight)| {
            let mut sojourns: Vec<u64> = records
                .iter()
                .filter(|r| class_of(r.tenant.0) == class)
                .map(|r| r.sojourn_cycles)
                .collect();
            sojourns.sort_unstable();
            let pct = |p: usize| -> u64 {
                if sojourns.is_empty() {
                    0
                } else {
                    sojourns[(sojourns.len() - 1) * p / 100]
                }
            };
            AsyncWfqClassRow {
                class,
                label,
                weight,
                tenants: tenant_counts[class as usize],
                finished: sojourns.len(),
                rejected: rejections
                    .iter()
                    .filter(|rej| class_of(rej.tenant.0) == class)
                    .count(),
                p50_sojourn_cycles: pct(50),
                p99_sojourn_cycles: pct(99),
            }
        })
        .collect();

    AsyncWfqReport {
        tenants,
        threads,
        stats: fleet.stats(),
        classes,
        digest,
    }
}

/// Serialises the two mode series and the async serving report to the
/// `BENCH_fleet.json` schema.
pub fn fleet_json(
    rtc: &[FleetScalingPoint],
    sliced: &[FleetScalingPoint],
    wfq: &AsyncWfqReport,
) -> String {
    let (_, sofia_hw) = sofia_hwmodel::table1();
    let series = |points: &[FleetScalingPoint]| {
        let mut out = String::from("[\n");
        for (i, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"workers\": {}, \"makespan_cycles\": {}, \"ticks\": {}, \
                 \"total_cycles\": {}, \"jobs_per_sec\": {:.3} }}{}\n",
                p.workers,
                p.makespan_cycles,
                p.ticks,
                p.total_cycles,
                p.jobs_per_sec,
                if i + 1 == points.len() { "" } else { "," }
            ));
        }
        out.push_str("    ]");
        out
    };
    let mut class_rows = String::from("[\n");
    for (i, c) in wfq.classes.iter().enumerate() {
        class_rows.push_str(&format!(
            "      {{ \"class\": {}, \"label\": \"{}\", \"weight\": {}, \"tenants\": {}, \
             \"finished\": {}, \"rejected\": {}, \"p50_sojourn_cycles\": {}, \
             \"p99_sojourn_cycles\": {} }}{}\n",
            c.class,
            c.label,
            c.weight,
            c.tenants,
            c.finished,
            c.rejected,
            c.p50_sojourn_cycles,
            c.p99_sojourn_cycles,
            if i + 1 == wfq.classes.len() { "" } else { "," }
        ));
    }
    class_rows.push_str("    ]");
    let s = wfq.stats;
    let async_wfq = format!(
        "{{\n    \"tenants\": {}, \"workers\": {}, \"slice_slots\": {},\n    \
         \"ticks\": {}, \"makespan_cycles\": {}, \"admitted\": {}, \"finished\": {}, \
         \"rejected\": {},\n    \"parks\": {}, \"revives\": {}, \
         \"peak_resident_machines\": {},\n    \"digest\": \"{:#018x}\",\n    \
         \"classes\": {}\n  }}",
        wfq.tenants,
        ASYNC_BENCH_WORKERS,
        ASYNC_BENCH_SLICE,
        s.ticks,
        s.makespan_cycles,
        s.admitted,
        s.finished,
        s.rejected,
        s.parks,
        s.revives,
        s.peak_resident_machines,
        wfq.digest,
        class_rows,
    );
    format!(
        "{{\n  \"bench\": \"fleet\",\n  \"jobs\": {},\n  \"tenants\": 3,\n  \
         \"sofia_clock_mhz\": {:.1},\n  \"slice_slots\": {},\n  \"modes\": {{\n    \
         \"run_to_completion\": {},\n    \"fuel_sliced\": {}\n  }},\n  \
         \"async_wfq\": {}\n}}\n",
        rtc.first().map_or(0, |p| p.jobs),
        sofia_hw.clock_mhz(),
        FLEET_BENCH_SLICE,
        series(rtc),
        series(sliced),
        async_wfq,
    )
}

// ---------------------------------------------------------------------
// Cross-backend comparison (`BENCH_backends.json`)
//
// The same workload, the same tamper and the same attack rows against
// all three integrity backends — SOFIA, the sponge-CFP fetch unit and
// the FIPAC-style fetch unit — reduced to the four numbers that separate
// the schemes: cycle overhead, hardware area, detection latency in
// instructions, and the attack-matrix verdicts.
// ---------------------------------------------------------------------

use sofia_attacks::xbackend::{self, XRow};
use sofia_backends::{BackendOutcome, FipacMachine, SpongeMachine};
use sofia_crypto::Nonce;
use sofia_isa::{asm, Instruction, Reg};
use sofia_transform::{install_fipac, seal_sponge};

/// Cycle cost of one backend on the comparison workload.
#[derive(Clone, Debug)]
pub struct BackendCyclePoint {
    /// Backend label (`sofia`, `sponge`, `fipac`).
    pub backend: &'static str,
    /// Simulated cycles for the workload.
    pub cycles: u64,
    /// Overhead versus the vanilla machine, in percent.
    pub overhead_pct: f64,
}

/// Hardware price of one backend under the Table-I area/clock model.
#[derive(Clone, Debug)]
pub struct BackendHwPoint {
    /// Design label (`vanilla`, `sofia`, `sponge`, `fipac`).
    pub backend: &'static str,
    /// Estimated slices.
    pub slices: f64,
    /// Estimated clock in MHz.
    pub clock_mhz: f64,
    /// Area overhead versus vanilla, in percent.
    pub area_overhead_pct: f64,
}

/// Instructions that retire between the tampered word's issue slot and
/// the scheme flagging the run (0 = caught before the tampered slot).
#[derive(Clone, Debug)]
pub struct DetectionLatencyPoint {
    /// Backend label.
    pub backend: &'static str,
    /// Detection latency in retired instructions.
    pub latency_instructions: u64,
}

/// Everything `BENCH_backends.json` records.
pub struct BackendsReport {
    /// Comparison workload name.
    pub workload: &'static str,
    /// Baseline cycles on the vanilla machine.
    pub vanilla_cycles: u64,
    /// Per-backend cycles and overhead.
    pub overhead: Vec<BackendCyclePoint>,
    /// Per-design area and clock.
    pub hardware: Vec<BackendHwPoint>,
    /// Per-backend detection latency on the nop-sled tamper.
    pub detection: Vec<DetectionLatencyPoint>,
    /// The cross-backend attack matrix.
    pub matrix: Vec<XRow>,
}

/// Nop-sled length for the detection-latency experiment.
pub const BACKENDS_SLED_WORDS: usize = 64;
/// Linear word index the experiment tampers.
pub const BACKENDS_TAMPER_WORD: usize = 8;

/// A straight-line victim: `nops` no-ops, one real write, `halt`. Its
/// only justifying signature point is the final halt, so FIPAC's
/// detection latency grows linearly with the tamper distance while
/// SOFIA and the sponge stay at (essentially) zero.
fn sled_victim(nops: usize) -> String {
    let mut src = String::from("main:\n");
    for _ in 0..nops {
        src.push_str("    nop\n");
    }
    src.push_str("    addi v0, zero, 7\n    halt\n");
    src
}

/// Runs the comparison workload on every backend, checking outputs
/// against the golden model, and returns the baseline cycles plus the
/// per-backend points.
///
/// # Panics
///
/// Panics if any backend misbehaves — measurement runs must be correct
/// runs (same contract as [`measure_with`]).
pub fn backend_cycle_points(workload: &Workload, keys: &KeySet) -> (u64, Vec<BackendCyclePoint>) {
    let row = measure(workload, keys);
    let vanilla = row.vanilla_cycles;
    let pct = |cycles: u64| (cycles as f64 / vanilla as f64 - 1.0) * 100.0;
    let mut points = vec![BackendCyclePoint {
        backend: "sofia",
        cycles: row.sofia_cycles,
        overhead_pct: pct(row.sofia_cycles),
    }];
    let module = workload.module();

    let image = seal_sponge(&module, keys, Nonce::new(1))
        .unwrap_or_else(|e| panic!("workload seals for the sponge: {e:?}"));
    let mut m = SpongeMachine::new(&image, keys);
    let outcome = m
        .run(FUEL)
        .unwrap_or_else(|e| panic!("sponge run traps: {e:?}"));
    assert!(
        matches!(outcome, BackendOutcome::Halted),
        "{}: sponge outcome {outcome:?}",
        workload.name
    );
    assert_eq!(
        m.mem().mmio.out_words,
        workload.expected,
        "{}: sponge output mismatch",
        workload.name
    );
    points.push(BackendCyclePoint {
        backend: "sponge",
        cycles: m.stats().cycles,
        overhead_pct: pct(m.stats().cycles),
    });

    let image = install_fipac(&module, keys, Nonce::new(1))
        .unwrap_or_else(|e| panic!("workload installs for FIPAC: {e:?}"));
    let mut m = FipacMachine::new(&image, keys);
    let outcome = m
        .run(FUEL)
        .unwrap_or_else(|e| panic!("fipac run traps: {e:?}"));
    assert!(
        matches!(outcome, BackendOutcome::Halted),
        "{}: fipac outcome {outcome:?}",
        workload.name
    );
    assert_eq!(
        m.mem().mmio.out_words,
        workload.expected,
        "{}: fipac output mismatch",
        workload.name
    );
    points.push(BackendCyclePoint {
        backend: "fipac",
        cycles: m.stats().cycles,
        overhead_pct: pct(m.stats().cycles),
    });

    (vanilla, points)
}

/// The four Table-I-model rows of the comparison.
pub fn backend_hw_points() -> Vec<BackendHwPoint> {
    let vanilla = sofia_hwmodel::vanilla();
    [
        ("vanilla", vanilla),
        ("sofia", sofia_hwmodel::sofia(sofia_hwmodel::PAPER_UNROLL)),
        ("sponge", sofia_hwmodel::sponge_cfp()),
        ("fipac", sofia_hwmodel::fipac()),
    ]
    .into_iter()
    .map(|(backend, hw)| BackendHwPoint {
        backend,
        slices: hw.slices,
        clock_mhz: hw.clock_mhz(),
        area_overhead_pct: hw.area_overhead_vs(&vanilla),
    })
    .collect()
}

/// The detection-latency experiment: replace the sled word at
/// [`BACKENDS_TAMPER_WORD`] with a register write and count how many
/// instructions retire before each scheme flags the run.
///
/// # Panics
///
/// Panics if any backend fails to flag the tamper.
pub fn detection_latency_points(keys: &KeySet) -> Vec<DetectionLatencyPoint> {
    let src = sled_victim(BACKENDS_SLED_WORDS);
    let module = asm::parse(&src).unwrap_or_else(|e| panic!("sled victim parses: {e:?}"));
    let k = BACKENDS_TAMPER_WORD;
    let evil = Instruction::Addi {
        rt: Reg::T5,
        rs: Reg::T5,
        imm: 1,
    }
    .encode();
    let latency = |instret: u64| instret.saturating_sub(k as u64);
    let mut points = Vec::new();

    // SOFIA's stored layout is block-structured: the word holding linear
    // instruction k sits after the two MAC words of its block.
    let image = Transformer::new(keys.clone())
        .transform(&module)
        .unwrap_or_else(|e| panic!("sled victim transforms: {e:?}"));
    let block_words = image.format.block_words();
    let per_block = block_words - 2;
    let stored = (k / per_block) * block_words + 2 + (k % per_block);
    let mut m = SofiaMachine::new(&image, keys);
    m.mem_mut().rom_mut()[stored] = evil;
    let outcome = m
        .run(FUEL)
        .unwrap_or_else(|e| panic!("sofia run traps: {e:?}"));
    assert!(!outcome.is_halted(), "sofia missed the sled tamper");
    points.push(DetectionLatencyPoint {
        backend: "sofia",
        latency_instructions: latency(m.stats().exec.instret),
    });

    let image = seal_sponge(&module, keys, Nonce::new(1))
        .unwrap_or_else(|e| panic!("sled victim seals: {e:?}"));
    let mut m = SpongeMachine::new(&image, keys);
    m.mem_mut().rom_mut()[k] = evil;
    let outcome = m
        .run(FUEL)
        .unwrap_or_else(|e| panic!("sponge run traps: {e:?}"));
    assert!(
        matches!(outcome, BackendOutcome::ViolationStop(_)),
        "sponge missed the sled tamper: {outcome:?}"
    );
    points.push(DetectionLatencyPoint {
        backend: "sponge",
        latency_instructions: latency(m.stats().instret),
    });

    let image = install_fipac(&module, keys, Nonce::new(1))
        .unwrap_or_else(|e| panic!("sled victim installs: {e:?}"));
    let mut m = FipacMachine::new(&image, keys);
    m.mem_mut().rom_mut()[k] = evil;
    let outcome = m
        .run(FUEL)
        .unwrap_or_else(|e| panic!("fipac run traps: {e:?}"));
    assert!(
        matches!(outcome, BackendOutcome::ViolationStop(_)),
        "fipac missed the sled tamper: {outcome:?}"
    );
    points.push(DetectionLatencyPoint {
        backend: "fipac",
        latency_instructions: latency(m.stats().instret),
    });

    points
}

/// Assembles the full cross-backend report on `workload`.
pub fn backends_report(workload: &Workload, keys: &KeySet) -> BackendsReport {
    let (vanilla_cycles, overhead) = backend_cycle_points(workload, keys);
    BackendsReport {
        workload: workload.name,
        vanilla_cycles,
        overhead,
        hardware: backend_hw_points(),
        detection: detection_latency_points(keys),
        matrix: xbackend::matrix(keys),
    }
}

/// Serialises a [`BackendsReport`] to the `BENCH_backends.json` schema.
pub fn backends_json(report: &BackendsReport) -> String {
    let mut out = String::from("{\n  \"bench\": \"backends\",\n");
    out.push_str(&format!(
        "  \"workload\": \"{}\",\n  \"vanilla_cycles\": {},\n",
        report.workload, report.vanilla_cycles
    ));
    out.push_str("  \"overhead\": [\n");
    for (i, p) in report.overhead.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"cycles\": {}, \"cycle_overhead_pct\": {:.1} }}{}\n",
            p.backend,
            p.cycles,
            p.overhead_pct,
            if i + 1 == report.overhead.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n  \"hardware\": [\n");
    for (i, p) in report.hardware.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"slices\": {:.0}, \"clock_mhz\": {:.1}, \
             \"area_overhead_pct\": {:.1} }}{}\n",
            p.backend,
            p.slices,
            p.clock_mhz,
            p.area_overhead_pct,
            if i + 1 == report.hardware.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"detection_latency\": {{ \"sled_words\": {}, \"tamper_word\": {}, \
         \"points\": [\n",
        BACKENDS_SLED_WORDS, BACKENDS_TAMPER_WORD
    ));
    for (i, p) in report.detection.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"latency_instructions\": {} }}{}\n",
            p.backend,
            p.latency_instructions,
            if i + 1 == report.detection.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ] },\n  \"attack_matrix\": [\n");
    for (i, row) in report.matrix.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"attack\": \"{}\", \"sofia\": \"{}\", \"sponge\": \"{}\", \
             \"fipac\": \"{}\" }}{}\n",
            row.attack,
            row.sofia.label(),
            row.sponge.label(),
            row.fipac.label(),
            if i + 1 == report.matrix.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `json` to `BENCH_backends.json` at the workspace root, like the
/// sibling bench emitters.
pub fn write_backends_json(json: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backends.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("BENCH_backends.json not written: {e}"),
    }
}

// ---------------------------------------------------------------------
// Host throughput (`BENCH_host.json`)
//
// Unlike every other trajectory file in this repo, these numbers are
// **wall-clock**: how fast *this host* seals and simulates. They are
// informational — no CI thresholds — but they are the first record of
// wins that land on real silicon (the bitsliced cipher, the zero-copy
// dispatch, the stealing pool) rather than in the simulated-cycle model,
// which stays bit-for-bit untouched.
// ---------------------------------------------------------------------

use std::time::Instant;

/// The physical machine a wall-clock record came from. Scaling claims in
/// `BENCH_host.json` are only meaningful against this: a flat seal-farm
/// curve on a one-core box is the expected result, not a regression.
#[derive(Clone, Debug)]
pub struct BoxShape {
    /// Logical cores the OS offers (`std::thread::available_parallelism`).
    pub logical_cores: usize,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Compilation target triple (baked in by the build script).
    pub target: String,
}

/// Records the shape of this host.
pub fn box_shape() -> BoxShape {
    BoxShape {
        logical_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        arch: std::env::consts::ARCH.to_string(),
        os: std::env::consts::OS.to_string(),
        target: env!("SOFIA_TARGET").to_string(),
    }
}

/// Keystream throughput of one bitslicing lane width.
#[derive(Clone, Debug)]
pub struct KeystreamWidthRate {
    /// Lane count of the sweep (16/32/64).
    pub lanes: usize,
    /// Blocks ciphered per second at this width.
    pub blocks_per_sec: f64,
}

/// Scalar-vs-bitsliced keystream generation rates (blocks/sec).
#[derive(Clone, Debug)]
pub struct KeystreamRates {
    /// Counters ciphered per timed sweep.
    pub blocks: usize,
    /// One [`sofia_crypto::ctr::pad`] call per counter.
    pub scalar_blocks_per_sec: f64,
    /// One [`sofia_crypto::ctr::pads`] sweep for the whole batch, at the
    /// default lane width.
    pub bitsliced_blocks_per_sec: f64,
    /// Lane count [`sofia_crypto::ctr::pads`] runs at by default.
    pub default_lanes: usize,
    /// The same sweep pinned to each supported lane width
    /// ([`sofia_crypto::ctr::pads_with`]) — the ILP evidence behind the
    /// default.
    pub widths: Vec<KeystreamWidthRate>,
}

impl KeystreamRates {
    /// Bitsliced throughput relative to scalar.
    pub fn speedup(&self) -> f64 {
        self.bitsliced_blocks_per_sec / self.scalar_blocks_per_sec
    }
}

/// Host simulation speed of one machine on the reference workload.
#[derive(Clone, Debug)]
pub struct HostMipsRow {
    /// Machine label (`vanilla`, `sofia-uncached`, `sofia-cached`).
    pub machine: String,
    /// Instruction slots the run retired.
    pub instret: u64,
    /// Retired slots per host wall-clock second, in millions.
    pub mips: f64,
}

/// Scalar-vs-bitsliced secure-installation rates (seals/sec).
#[derive(Clone, Debug)]
pub struct SealRates {
    /// Workload label.
    pub workload: String,
    /// Seals per second through [`sofia_crypto::CryptoEngine::Scalar`].
    pub scalar_seals_per_sec: f64,
    /// Seals per second through [`sofia_crypto::CryptoEngine::Bitsliced`].
    pub bitsliced_seals_per_sec: f64,
}

impl SealRates {
    /// Bitsliced throughput relative to scalar.
    pub fn speedup(&self) -> f64 {
        self.bitsliced_seals_per_sec / self.scalar_seals_per_sec
    }
}

/// Host wall-clock throughput of a cold-start seal wave at one farm
/// worker count.
#[derive(Clone, Debug)]
pub struct SealFarmPoint {
    /// Farm worker threads.
    pub workers: usize,
    /// Distinct images the wave sealed (one per tenant).
    pub images: usize,
    /// Seals per host wall-clock second.
    pub seals_per_sec: f64,
}

/// Host wall-clock throughput of one fleet configuration on the
/// [`fleet_mix`].
#[derive(Clone, Debug)]
pub struct FleetHostPoint {
    /// Worker threads.
    pub workers: usize,
    /// Pool label (`shared` or `stealing`).
    pub pool: String,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Jobs per host wall-clock second.
    pub jobs_per_sec: f64,
}

/// Everything `BENCH_host.json` records.
#[derive(Clone, Debug)]
pub struct HostReport {
    /// The machine these wall-clock numbers came from.
    pub box_shape: BoxShape,
    /// Keystream generation rates.
    pub keystream: KeystreamRates,
    /// Simulation speed per machine.
    pub mips: Vec<HostMipsRow>,
    /// Secure-installation rates.
    pub seal: SealRates,
    /// Cold-start seal-wave throughput per farm worker count.
    pub seal_farm: Vec<SealFarmPoint>,
    /// Fleet batch throughput per (workers, pool) point.
    pub fleet: Vec<FleetHostPoint>,
}

fn best_secs(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Measures scalar vs bitsliced keystream generation over `blocks`
/// distinct control-flow counters, best of `reps` sweeps each.
pub fn host_keystream(blocks: usize, reps: u32) -> KeystreamRates {
    use sofia_crypto::util::SplitMix64;
    let cipher = KeySet::from_seed(0x4057).expand().ctr;
    let mut rng = SplitMix64::new(0x4057_BEEF);
    let counters: Vec<sofia_crypto::CounterBlock> = (0..blocks)
        .map(|_| {
            let prev = ((rng.next_u64() as u32) & 0x00FF_FFFF) << 2;
            let pc = ((rng.next_u64() as u32) & 0x00FF_FFFF) << 2;
            sofia_crypto::CounterBlock::from_edge(sofia_crypto::Nonce::new(7), prev, pc)
        })
        .collect();
    let scalar = best_secs(reps, || {
        let mut acc = 0u32;
        for &c in &counters {
            acc ^= sofia_crypto::ctr::pad(&cipher, c);
        }
        std::hint::black_box(acc);
    });
    let bitsliced = best_secs(reps, || {
        std::hint::black_box(sofia_crypto::ctr::pads(&cipher, &counters));
    });
    let widths = sofia_crypto::LaneWidth::ALL
        .iter()
        .map(|&width| {
            let secs = best_secs(reps, || {
                std::hint::black_box(sofia_crypto::ctr::pads_with(&cipher, &counters, width));
            });
            KeystreamWidthRate {
                lanes: width.lanes(),
                blocks_per_sec: blocks as f64 / secs,
            }
        })
        .collect();
    KeystreamRates {
        blocks,
        scalar_blocks_per_sec: blocks as f64 / scalar,
        bitsliced_blocks_per_sec: blocks as f64 / bitsliced,
        default_lanes: sofia_crypto::LaneWidth::default().lanes(),
        widths,
    }
}

/// Measures host MIPS of the three machines (vanilla, SOFIA uncached,
/// SOFIA cached at the trajectory geometry) on `fib(5000)`, best of
/// `reps` runs each.
///
/// # Panics
///
/// Panics if any machine misbehaves — measurement runs must be correct
/// runs.
pub fn host_mips(reps: u32) -> Vec<HostMipsRow> {
    let keys = KeySet::from_seed(0xCA5E);
    let w = sofia_workloads::kernels::fib(5_000);
    let assembly = w.assembly();
    let image = w.secure_image(&keys);
    let cached = SofiaConfig {
        vcache: VCacheConfig::enabled(256, 8),
        ..Default::default()
    };
    let mut rows = Vec::new();
    let mut push = |machine: &str, instret: u64, secs: f64| {
        rows.push(HostMipsRow {
            machine: machine.to_string(),
            instret,
            mips: instret as f64 / secs / 1e6,
        });
    };
    let mut instret = 0;
    let secs = best_secs(reps, || {
        let mut m = VanillaMachine::new(&assembly);
        assert!(m
            .run(FUEL)
            .unwrap_or_else(|e| panic!("vanilla traps: {e:?}"))
            .is_halted());
        instret = m.stats().instret;
    });
    push("vanilla", instret, secs);
    let secs = best_secs(reps, || {
        let mut m = SofiaMachine::new(&image, &keys);
        assert!(m
            .run(FUEL)
            .unwrap_or_else(|e| panic!("sofia traps: {e:?}"))
            .is_halted());
        instret = m.stats().exec.instret;
    });
    push("sofia-uncached", instret, secs);
    let secs = best_secs(reps, || {
        let mut m = SofiaMachine::with_config(&image, &keys, &cached);
        assert!(m
            .run(FUEL)
            .unwrap_or_else(|e| panic!("sofia cached traps: {e:?}"))
            .is_halted());
        instret = m.stats().exec.instret;
    });
    push("sofia-cached", instret, secs);
    rows
}

/// Measures seals/sec of the full secure installation (lower → CFG →
/// pack → trees → seal) on ADPCM under each [`sofia_crypto::CryptoEngine`],
/// best of `reps` seals each.
///
/// # Panics
///
/// Panics if the workload fails to transform.
pub fn host_seal_rates(reps: u32) -> SealRates {
    let keys = KeySet::from_seed(0x5EA1);
    let module = sofia_workloads::adpcm::workload(600).module();
    let rate = |engine: sofia_crypto::CryptoEngine| {
        let transformer = Transformer::new(keys.clone()).with_engine(engine);
        1.0 / best_secs(reps, || {
            std::hint::black_box(
                transformer
                    .transform(&module)
                    .unwrap_or_else(|e| panic!("adpcm seals: {e:?}")),
            );
        })
    };
    SealRates {
        workload: "adpcm600".to_string(),
        scalar_seals_per_sec: rate(sofia_crypto::CryptoEngine::Scalar),
        bitsliced_seals_per_sec: rate(sofia_crypto::CryptoEngine::Bitsliced),
    }
}

/// Measures host wall-clock jobs/sec of the [`fleet_mix`] batch at each
/// worker count, under the shared-queue and work-stealing pools
/// (fuel-sliced mode — the discipline that actually contends on the
/// queue), best of `reps` batches per point (each rep rebuilds the fleet
/// and re-submits the mix; only `run_batch` is timed). Wall-clock
/// scaling needs real cores; on a single-core host the points simply
/// document that.
///
/// # Panics
///
/// Panics if any job of the mix fails to halt.
pub fn host_fleet_points(workers_list: &[usize], reps: u32) -> Vec<FleetHostPoint> {
    use sofia_fleet::{Fleet, FleetConfig, PoolMode, SchedMode};
    let mut points = Vec::new();
    for &workers in workers_list {
        for (label, pool) in [
            ("shared", PoolMode::SharedQueue),
            ("stealing", PoolMode::WorkStealing),
        ] {
            let mut jobs = 0;
            let secs = {
                let mut best = f64::INFINITY;
                for _ in 0..reps.max(1) {
                    let mut fleet = Fleet::new(FleetConfig {
                        workers,
                        mode: SchedMode::FuelSliced {
                            slice: FLEET_BENCH_SLICE,
                        },
                        pool,
                        ..Default::default()
                    });
                    fleet_mix_tenants(&mut fleet);
                    let specs = fleet_mix();
                    jobs = specs.len();
                    for spec in specs {
                        fleet
                            .submit(spec)
                            .unwrap_or_else(|e| panic!("mix tenants are registered: {e:?}"));
                    }
                    let t = Instant::now();
                    let records = fleet.run_batch();
                    best = best.min(t.elapsed().as_secs_f64());
                    for r in &records {
                        assert!(r.outcome.is_halted(), "{}: {:?}", r.job, r.outcome);
                    }
                }
                best
            };
            points.push(FleetHostPoint {
                workers,
                pool: label.to_string(),
                jobs,
                jobs_per_sec: jobs as f64 / secs,
            });
        }
    }
    points
}

/// Measures seals/sec of a cold-start wave — `tenants` distinct device
/// keysets all sealing the same moderate program, so every request is a
/// distinct image — through [`sofia_fleet::SealFarm`] at each worker
/// count, best of `reps` waves per point. Each rep starts from a fresh
/// [`sofia_transform::cache::ImageCache`] so every wave really seals.
/// Like the fleet points, wall-clock scaling needs real cores; the box
/// shape in the report says whether this host has them.
pub fn host_seal_farm_points(
    workers_list: &[usize],
    tenants: usize,
    reps: u32,
) -> Vec<SealFarmPoint> {
    use sofia_fleet::SealFarm;
    use sofia_transform::cache::ImageCache;
    let keysets: Vec<KeySet> = (0..tenants)
        .map(|t| KeySet::from_seed(0xFA23 + t as u64))
        .collect();
    let source = sofia_workloads::adpcm::workload(240).source;
    let requests: Vec<(&KeySet, &str)> = keysets.iter().map(|k| (k, source.as_str())).collect();
    workers_list
        .iter()
        .map(|&workers| {
            let secs = best_secs(reps, || {
                let cache = ImageCache::new();
                let wave = SealFarm::new(&cache, workers).seal_wave(&requests);
                assert_eq!(wave.distinct, tenants, "cold wave must seal every tenant");
                std::hint::black_box(wave);
            });
            SealFarmPoint {
                workers,
                images: tenants,
                seals_per_sec: tenants as f64 / secs,
            }
        })
        .collect()
}

/// Parses a `SOFIA_BENCH_MAX_WORKERS` value. `None` input (the variable
/// is unset) means "no cap". A set-but-unparsable value is an **error**,
/// not a silent no-cap: the old `.ok()` chain swallowed typos like
/// `SOFIA_BENCH_MAX_WORKERS=fouR`, letting a CI matrix leg record
/// full-nproc numbers while claiming to be capped.
///
/// # Errors
///
/// A human-readable message naming the bad value.
pub fn parse_worker_cap(raw: Option<&str>) -> Result<Option<usize>, String> {
    match raw {
        None => Ok(None),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => Ok(Some(n.max(1))),
            Err(e) => Err(format!(
                "SOFIA_BENCH_MAX_WORKERS={v:?} is not a worker count ({e}); \
                 unset it for no cap or set a positive integer"
            )),
        },
    }
}

/// Parses a `SOFIA_BENCH_FLEET_10K` value — the opt-in for the
/// 10,000-tenant async serving point, which takes minutes in debug
/// builds and so stays off the default `repro -- fleet` path. Unset
/// means off; like [`parse_worker_cap`], a set-but-unrecognised value is
/// an **error**, not a silent off.
///
/// # Errors
///
/// A human-readable message naming the bad value.
pub fn parse_fleet_10k(raw: Option<&str>) -> Result<bool, String> {
    match raw {
        None => Ok(false),
        Some(v) => match v.trim() {
            "1" | "true" | "yes" | "on" => Ok(true),
            "0" | "false" | "no" | "off" => Ok(false),
            other => Err(format!(
                "SOFIA_BENCH_FLEET_10K={other:?} is not a boolean flag; \
                 set 1/true/yes/on to include the 10k-tenant point"
            )),
        },
    }
}

/// Worker counts the host sweeps run at: 1/2/4/8, capped by the
/// `SOFIA_BENCH_MAX_WORKERS` environment variable (the CI matrix knob —
/// `=1` pins the whole experiment to the serial points).
///
/// # Panics
///
/// Panics if the variable is set to something [`parse_worker_cap`]
/// rejects — a misconfigured cap must fail the run, not silently
/// measure at full width.
pub fn host_worker_counts() -> Vec<usize> {
    let raw = std::env::var("SOFIA_BENCH_MAX_WORKERS").ok();
    let cap = match parse_worker_cap(raw.as_deref()) {
        Ok(cap) => cap.unwrap_or(usize::MAX),
        Err(msg) => panic!("{msg}"),
    };
    [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w <= cap)
        .collect()
}

/// Runs the whole host-throughput experiment. `reps` trades run time for
/// measurement stability (the smoke run under `cargo test` uses 1, so
/// every section — fleet included — is a single sample there and best of
/// `reps` under `repro -- host` / `cargo bench`).
pub fn host_report(reps: u32) -> HostReport {
    let workers = host_worker_counts();
    HostReport {
        box_shape: box_shape(),
        keystream: host_keystream(1 << 14, reps),
        mips: host_mips(reps),
        seal: host_seal_rates(reps),
        seal_farm: host_seal_farm_points(&workers, 16, reps),
        fleet: host_fleet_points(&workers, reps),
    }
}

/// Serialises a [`HostReport`] to the `BENCH_host.json` schema. The
/// `profile` field records whether the numbers came from a release or a
/// debug build — wall-clock figures are only comparable within one
/// profile.
pub fn host_json(report: &HostReport) -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let mut out = String::from("{\n  \"bench\": \"host\",\n");
    out.push_str(&format!("  \"profile\": \"{profile}\",\n"));
    let b = &report.box_shape;
    out.push_str(&format!(
        "  \"box\": {{ \"logical_cores\": {}, \"arch\": \"{}\", \"os\": \"{}\", \
         \"target\": \"{}\" }},\n",
        b.logical_cores, b.arch, b.os, b.target
    ));
    let k = &report.keystream;
    out.push_str(&format!(
        "  \"keystream\": {{ \"blocks\": {}, \"scalar_blocks_per_sec\": {:.0}, \
         \"bitsliced_blocks_per_sec\": {:.0}, \"bitsliced_speedup\": {:.2}, \
         \"default_lanes\": {}, \"widths\": [\n",
        k.blocks,
        k.scalar_blocks_per_sec,
        k.bitsliced_blocks_per_sec,
        k.speedup(),
        k.default_lanes
    ));
    for (i, w) in k.widths.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"lanes\": {}, \"blocks_per_sec\": {:.0}, \"speedup_vs_scalar\": {:.2} }}{}\n",
            w.lanes,
            w.blocks_per_sec,
            w.blocks_per_sec / k.scalar_blocks_per_sec,
            if i + 1 == k.widths.len() { "" } else { "," }
        ));
    }
    out.push_str("  ] },\n");
    out.push_str("  \"machine_mips\": [\n");
    for (i, r) in report.mips.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"machine\": \"{}\", \"instret\": {}, \"mips\": {:.2} }}{}\n",
            r.machine,
            r.instret,
            r.mips,
            if i + 1 == report.mips.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    let s = &report.seal;
    out.push_str(&format!(
        "  \"seal\": {{ \"workload\": \"{}\", \"scalar_seals_per_sec\": {:.2}, \
         \"bitsliced_seals_per_sec\": {:.2}, \"bitsliced_speedup\": {:.2} }},\n",
        s.workload,
        s.scalar_seals_per_sec,
        s.bitsliced_seals_per_sec,
        s.speedup()
    ));
    out.push_str("  \"seal_farm\": [\n");
    let serial = report
        .seal_farm
        .iter()
        .find(|p| p.workers == 1)
        .map(|p| p.seals_per_sec);
    for (i, p) in report.seal_farm.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"workers\": {}, \"images\": {}, \"seals_per_sec\": {:.2}, \
             \"speedup_vs_serial\": {:.2} }}{}\n",
            p.workers,
            p.images,
            p.seals_per_sec,
            p.seals_per_sec / serial.unwrap_or(p.seals_per_sec),
            if i + 1 == report.seal_farm.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"fleet_host\": [\n");
    for (i, p) in report.fleet.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"workers\": {}, \"pool\": \"{}\", \"jobs\": {}, \"jobs_per_sec\": {:.2} }}{}\n",
            p.workers,
            p.pool,
            p.jobs,
            p.jobs_per_sec,
            if i + 1 == report.fleet.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `json` to `BENCH_host.json` at the workspace root (next to the
/// other trajectory files), reporting the outcome on stdout/stderr like
/// the sibling bench emitters.
pub fn write_host_json(json: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_host.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("BENCH_host.json not written: {e}"),
    }
}

// ---------------------------------------------------------------------
// Chaos & resilience (`BENCH_chaos.json`)
//
// The WFQ serving workload re-run under seeded host-fault injection
// (`sofia_fleet::ChaosPlan`) with the self-healing ladder armed
// (`sofia_fleet::ResilienceConfig::standard` plus per-class deadlines):
// what fraction of accepted honest work the fleet still serves to a
// halted completion, what it sheds, and how fast the breaker recovers,
// across a fault-rate sweep. Everything is virtual-time deterministic —
// every point asserts bit-identical digests at 1 and N host threads,
// and the zero-fault point asserts bit-identical records against a
// driver with the chaos and resilience machinery entirely absent (the
// `ChaosPlan::none()` invisibility invariant, at bench scale).
// ---------------------------------------------------------------------

/// Fault rates (ppm per draw) the sweep runs: none, 1e-3, 1e-2.
pub const CHAOS_BENCH_RATES_PPM: [u32; 3] = [0, 1_000, 10_000];
/// Seed of every sweep point's [`sofia_fleet::ChaosPlan`].
pub const CHAOS_BENCH_SEED: u64 = 0xC4A0_5EED;
/// Honest tenants of the chaos workload (70/20/10 class split, same
/// shape as [`async_wfq_report`]).
pub const CHAOS_BENCH_TENANTS: usize = 200;
/// Hostile "storm" tenants the [`sofia_fleet::Seam::Storm`] process
/// drives: their sabotaged bursts exercise quarantine under chaos and
/// are excluded from the availability denominator.
pub const CHAOS_BENCH_STORM_TENANTS: usize = 6;
/// Per-class sojourn deadlines in virtual cycles, `(class, deadline)`.
/// Comfortably above the zero-fault maximum (so the zero point has no
/// deadline events — the zero-point assertions pin exactly that) and
/// tight enough that stall taxes and retry backoffs at the 1e-2 rate
/// push jobs past them.
pub const CHAOS_BENCH_DEADLINES: [(u8, u64); 2] = [(0, 6_000), (1, 60_000)];

/// One service class's latency roll-up at one fault rate (honest
/// tenants only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosClassRow {
    /// Raw class id.
    pub class: u8,
    /// Human label.
    pub label: &'static str,
    /// Honest records of the class.
    pub finished: usize,
    /// Median sojourn in simulated cycles.
    pub p50_sojourn_cycles: u64,
    /// 99th-percentile sojourn in simulated cycles.
    pub p99_sojourn_cycles: u64,
}

/// One point of the fault-rate sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPoint {
    /// Per-draw fault probability of every seam, in ppm.
    pub rate_ppm: u32,
    /// Driver counters at drain.
    pub stats: sofia_fleet::AsyncStats,
    /// Resilience counters (faults, retries, sheds, breaker,
    /// degradations).
    pub res: sofia_fleet::ResilienceStats,
    /// Honest records (jobs the fleet accepted and drove to *some*
    /// typed record — the availability denominator; intentional
    /// admission rejections are counted separately in `stats`).
    pub accepted: usize,
    /// Honest records that halted cleanly.
    pub served: usize,
    /// `served / accepted` — 1.0 at zero fault rate, pinned by CI.
    pub availability: f64,
    /// `(deadline_shed + deadline_late) / accepted`.
    pub deadline_miss_rate: f64,
    /// Mean breaker open→close span in ticks (0 when it never closed).
    pub mttr_ticks: f64,
    /// Per-class sojourn rows, ascending class id.
    pub classes: Vec<ChaosClassRow>,
    /// FNV-1a over all records and rejections — identical at any host
    /// thread count (asserted before this point is built).
    pub digest: u64,
}

/// Everything `BENCH_chaos.json` records.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosReport {
    /// Honest tenants.
    pub tenants: usize,
    /// Storm tenants (excluded from availability).
    pub storm_tenants: usize,
    /// Host threads of the non-serial leg of each determinism check.
    pub threads: usize,
    /// Chaos seed of every point.
    pub seed: u64,
    /// One point per entry of [`CHAOS_BENCH_RATES_PPM`].
    pub points: Vec<ChaosPoint>,
}

/// One full drive of the chaos workload.
struct ChaosRun {
    stats: sofia_fleet::AsyncStats,
    res: sofia_fleet::ResilienceStats,
    records: Vec<sofia_fleet::JobRecord>,
    digest: u64,
}

/// Drives the chaos workload once: the [`async_wfq_report`] tenant mix
/// (scaled to [`CHAOS_BENCH_TENANTS`]) plus storm tenants, under
/// `rate_ppm` on every seam. `resilient` arms the recovery ladder —
/// `false` is the machinery-off baseline the zero point is pinned
/// against.
///
/// # Panics
///
/// Panics if a resilience counter and its typed event stream disagree —
/// the "every fault accounted for by exactly one typed event" contract.
fn chaos_run(rate_ppm: u32, threads: usize, resilient: bool) -> ChaosRun {
    use sofia_fleet::{
        AdmissionConfig, AsyncConfig, AsyncFleet, ChaosPlan, ClassConfig, ClassId, FaultRate,
        JobSpec, ResilienceConfig, ResilienceEvent, Sabotage, SchedMode, Seam, TenantId,
    };
    use std::collections::BTreeMap;
    let tenants = CHAOS_BENCH_TENANTS;
    let n_interactive = tenants * 7 / 10;
    let n_batch = tenants * 2 / 10;
    let n_best = tenants - n_interactive - n_batch;
    const CLASS_META: [(u8, &str, u64); 3] = [
        (0, "interactive", 8),
        (1, "batch", 2),
        (2, "best_effort", 1),
    ];
    let mut admission = AdmissionConfig::default();
    for (id, _, weight) in CLASS_META {
        admission.classes.insert(
            id,
            ClassConfig {
                weight,
                ..Default::default()
            },
        );
    }
    if let Some(best) = admission.classes.get_mut(&2) {
        best.queue_cap = (n_best / 2).max(1);
    }
    let plan = ChaosPlan::uniform(CHAOS_BENCH_SEED, FaultRate::ppm(rate_ppm));
    let mut resilience = ResilienceConfig::default();
    if resilient {
        resilience = ResilienceConfig::standard();
        for (class, deadline) in CHAOS_BENCH_DEADLINES {
            resilience.deadlines.insert(ClassId(class), deadline);
        }
        // A tighter trip wire than the serving preset: at 1e-2 per
        // lane-tick the fleet sees ~0.1 faults/tick, and the bench
        // wants the breaker's open→close span (the MTTR column) on the
        // record, not just in the drill.
        if let Some(b) = resilience.breaker.as_mut() {
            b.fault_threshold = 3;
        }
    }
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads,
        workers: ASYNC_BENCH_WORKERS,
        mode: SchedMode::FuelSliced {
            slice: ASYNC_BENCH_SLICE,
        },
        admission,
        chaos: plan.clone(),
        resilience,
        ..Default::default()
    });

    let class_of = |id: u32| -> u8 {
        let id = id as usize - 1;
        if id < n_interactive {
            0
        } else if id < n_interactive + n_batch {
            1
        } else {
            2
        }
    };
    for id in 1..=tenants as u32 {
        fleet
            .register_tenant(
                TenantId(id),
                KeySet::from_seed(0x5EED_0000 + id as u64),
                ClassId(class_of(id)),
            )
            .unwrap_or_else(|e| panic!("fresh driver: {e:?}"));
    }
    for s in 0..CHAOS_BENCH_STORM_TENANTS as u32 {
        let id = tenants as u32 + 1 + s;
        fleet
            .register_tenant(
                TenantId(id),
                KeySet::from_seed(0x5709_0000 + id as u64),
                ClassId(2),
            )
            .unwrap_or_else(|e| panic!("fresh driver: {e:?}"));
    }

    // Deterministic arrival generator — same LCG and split as the WFQ
    // bench, so the zero-chaos point is the familiar serving workload.
    let mut lcg: u64 = 0x2545F491_4F6CDD1D;
    let mut draw = move |bound: u64| {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (lcg >> 33) % bound
    };
    let horizon: u64 = 400u64.max(400 * tenants as u64 / 1000);
    let batch_job = |id: u32, round: u32| {
        JobSpec::new(
            TenantId(id),
            wfq_job_src(120 + (id % 7) * 10 + round * 3),
            200_000,
        )
    };
    for id in 1..=tenants as u32 {
        match class_of(id) {
            0 => {
                for _ in 0..2 {
                    let spec = JobSpec::new(TenantId(id), wfq_job_src(8 + (id % 16)), 100_000);
                    let tick = draw(horizon);
                    fleet.submit_at(spec, tick);
                }
            }
            1 => {
                fleet.submit_at(batch_job(id, 0), draw(8));
            }
            _ => {
                let spec = JobSpec::new(TenantId(id), wfq_job_src(40 + (id % 11)), 150_000);
                fleet.submit_at(spec, 0);
            }
        }
    }

    let mut rounds_left: BTreeMap<u32, u32> = (1..=tenants as u32)
        .filter(|&id| class_of(id) == 1)
        .map(|id| (id, 2))
        .collect();
    let mut records = Vec::new();
    loop {
        // The storm process: per tick, per storm tenant, a seeded draw
        // decides whether a sabotaged burst job arrives. Harness-drawn
        // (the fleet cannot invent tenants), so the harness also files
        // the typed fault event.
        let now = fleet.now();
        if now < horizon {
            for s in 0..CHAOS_BENCH_STORM_TENANTS as u32 {
                let id = tenants as u32 + 1 + s;
                if plan.strikes(Seam::Storm, now, 0x5702_0000 + s as u64) {
                    fleet.note_harness_fault(Seam::Storm, None, Some(TenantId(id)));
                    let spec = JobSpec::new(TenantId(id), wfq_job_src(24), 150_000)
                        .with_sabotage(Sabotage::FlipRomWord { word: 9, mask: 1 });
                    fleet.submit_at(spec, now + 1);
                }
            }
        }
        fleet.tick();
        for r in fleet.drain_finished() {
            if let Some(left) = rounds_left.get_mut(&r.tenant.0) {
                if *left > 0 {
                    let round = 3 - *left;
                    *left -= 1;
                    fleet.submit_at(batch_job(r.tenant.0, round), fleet.now());
                }
            }
            records.push(r);
        }
        if fleet.queued_jobs() == 0 && fleet.pending_arrivals() == 0 && fleet.now() >= horizon {
            break;
        }
    }
    let rejections = fleet.drain_rejected();

    // Every fault strike must be accounted for by exactly one typed
    // event — the chaos layer's accounting contract.
    let events = fleet.drain_resilience_events();
    let fault_events = events
        .iter()
        .filter(|e| matches!(e, ResilienceEvent::FaultInjected { .. }))
        .count() as u64;
    let res = fleet.resilience_stats();
    assert_eq!(
        res.faults_injected, fault_events,
        "every injected fault must land exactly one typed event"
    );

    let mut digest: u64 = 0xcbf29ce484222325;
    for r in &records {
        for word in [
            r.job.0,
            r.tenant.0 as u64,
            r.stats.exec.cycles,
            r.stats.exec.instret,
            r.arrival_tick,
            r.start_tick,
            r.end_tick,
            r.sojourn_cycles,
            r.slices as u64,
        ] {
            fnv1a(&mut digest, &word.to_le_bytes());
        }
        fnv1a(&mut digest, format!("{:?}", r.outcome).as_bytes());
        for w in &r.out_words {
            fnv1a(&mut digest, &w.to_le_bytes());
        }
    }
    for rej in &rejections {
        fnv1a(&mut digest, &rej.job.0.to_le_bytes());
        fnv1a(&mut digest, &rej.tick.to_le_bytes());
        fnv1a(&mut digest, format!("{}", rej.error).as_bytes());
    }
    ChaosRun {
        stats: fleet.stats(),
        res,
        records,
        digest,
    }
}

/// Runs the chaos sweep: every rate of [`CHAOS_BENCH_RATES_PPM`], each
/// point asserted bit-identical at 1 and `threads` host threads, and
/// the zero point asserted bit-identical against a driver with the
/// chaos and resilience machinery absent.
///
/// # Panics
///
/// Panics if any determinism or accounting assertion fails, if the zero
/// point serves less than everything it accepted, or if the top rate
/// injects no faults.
pub fn chaos_report(threads: usize) -> ChaosReport {
    const CLASS_META: [(u8, &str); 3] = [(0, "interactive"), (1, "batch"), (2, "best_effort")];
    let honest = |tenant: u32| tenant as usize <= CHAOS_BENCH_TENANTS;
    let mut points = Vec::new();
    for rate_ppm in CHAOS_BENCH_RATES_PPM {
        let serial = chaos_run(rate_ppm, 1, true);
        let run = chaos_run(rate_ppm, threads, true);
        assert_eq!(
            (&serial.stats, &serial.res, serial.digest),
            (&run.stats, &run.res, run.digest),
            "chaos results at rate {rate_ppm} ppm depend on the host thread count"
        );
        if rate_ppm == 0 {
            let baseline = chaos_run(0, threads, false);
            assert_eq!(
                baseline.digest, run.digest,
                "ChaosPlan::none + idle resilience must be bit-identical to \
                 a driver without the machinery"
            );
            assert_eq!(run.res.faults_injected, 0);
            for r in &run.records {
                assert!(
                    r.outcome.is_halted(),
                    "{}: {:?} at zero fault rate",
                    r.job,
                    r.outcome
                );
            }
        }
        let accepted = run.records.iter().filter(|r| honest(r.tenant.0)).count();
        let served = run
            .records
            .iter()
            .filter(|r| honest(r.tenant.0) && r.outcome.is_halted())
            .count();
        let availability = served as f64 / accepted.max(1) as f64;
        let res = run.res;
        let deadline_miss_rate =
            (res.deadline_shed + res.deadline_late) as f64 / accepted.max(1) as f64;
        let mttr_ticks = if res.breaker_closes == 0 {
            0.0
        } else {
            res.breaker_open_ticks as f64 / res.breaker_closes as f64
        };
        let classes = CLASS_META
            .iter()
            .map(|&(class, label)| {
                let mut sojourns: Vec<u64> = run
                    .records
                    .iter()
                    .filter(|r| honest(r.tenant.0) && chaos_class_of(r.tenant.0) == class)
                    .map(|r| r.sojourn_cycles)
                    .collect();
                sojourns.sort_unstable();
                let pct = |p: usize| -> u64 {
                    if sojourns.is_empty() {
                        0
                    } else {
                        sojourns[(sojourns.len() - 1) * p / 100]
                    }
                };
                ChaosClassRow {
                    class,
                    label,
                    finished: sojourns.len(),
                    p50_sojourn_cycles: pct(50),
                    p99_sojourn_cycles: pct(99),
                }
            })
            .collect();
        points.push(ChaosPoint {
            rate_ppm,
            stats: run.stats,
            res,
            accepted,
            served,
            availability,
            deadline_miss_rate,
            mttr_ticks,
            classes,
            digest: run.digest,
        });
    }
    let top = points
        .last()
        .unwrap_or_else(|| panic!("sweep produced no points"));
    assert!(
        top.res.faults_injected > 0,
        "the top rate must actually inject faults"
    );
    assert!(
        top.availability > 0.0,
        "the fleet must keep serving through the top fault rate"
    );
    ChaosReport {
        tenants: CHAOS_BENCH_TENANTS,
        storm_tenants: CHAOS_BENCH_STORM_TENANTS,
        threads,
        seed: CHAOS_BENCH_SEED,
        points,
    }
}

/// The class of an honest chaos-workload tenant (mirrors the 70/20/10
/// split used at submission).
fn chaos_class_of(tenant: u32) -> u8 {
    let n_interactive = CHAOS_BENCH_TENANTS * 7 / 10;
    let n_batch = CHAOS_BENCH_TENANTS * 2 / 10;
    let id = tenant as usize - 1;
    if id < n_interactive {
        0
    } else if id < n_interactive + n_batch {
        1
    } else {
        2
    }
}

/// Serialises a [`ChaosReport`] to the `BENCH_chaos.json` schema.
/// `availability` is formatted to four places so CI can grep the
/// zero-rate pin literally (`"availability": 1.0000`).
pub fn chaos_json(report: &ChaosReport) -> String {
    let mut out = String::from("{\n  \"bench\": \"chaos\",\n");
    out.push_str(&format!(
        "  \"tenants\": {}, \"storm_tenants\": {}, \"threads\": {},\n  \"seed\": {},\n",
        report.tenants, report.storm_tenants, report.threads, report.seed
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        let s = p.stats;
        let r = p.res;
        out.push_str(&format!(
            "    {{ \"rate_ppm\": {}, \"availability\": {:.4}, \"deadline_miss_rate\": {:.4},\n      \
             \"served\": {}, \"accepted\": {}, \"rejected\": {}, \"ticks\": {}, \
             \"makespan_cycles\": {},\n      \
             \"faults_injected\": {}, \"seal_faults\": {}, \"snapshot_corruptions\": {}, \
             \"worker_stalls\": {}, \"worker_panics_injected\": {}, \"storm_bursts\": {},\n      \
             \"retries_scheduled\": {}, \"retries_exhausted\": {}, \"deadline_shed\": {}, \
             \"deadline_late\": {}, \"load_shed\": {},\n      \
             \"breaker_opens\": {}, \"breaker_closes\": {}, \"breaker_open_ticks\": {}, \
             \"mttr_ticks\": {:.1},\n      \
             \"vcache_off_tenants\": {}, \"scalar_fallbacks\": {}, \"inline_seal_fallbacks\": {},\n      \
             \"digest\": \"{:#018x}\",\n      \"classes\": [\n",
            p.rate_ppm,
            p.availability,
            p.deadline_miss_rate,
            p.served,
            p.accepted,
            s.rejected,
            s.ticks,
            s.makespan_cycles,
            r.faults_injected,
            r.seal_faults,
            r.snapshot_corruptions,
            r.worker_stalls,
            r.worker_panics_injected,
            r.storm_bursts,
            r.retries_scheduled,
            r.retries_exhausted,
            r.deadline_shed,
            r.deadline_late,
            r.load_shed,
            r.breaker_opens,
            r.breaker_closes,
            r.breaker_open_ticks,
            p.mttr_ticks,
            r.vcache_off_tenants,
            r.scalar_fallbacks,
            r.inline_seal_fallbacks,
            p.digest,
        ));
        for (j, c) in p.classes.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"class\": {}, \"label\": \"{}\", \"finished\": {}, \
                 \"p50_sojourn_cycles\": {}, \"p99_sojourn_cycles\": {} }}{}\n",
                c.class,
                c.label,
                c.finished,
                c.p50_sojourn_cycles,
                c.p99_sojourn_cycles,
                if j + 1 == p.classes.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "      ] }}{}\n",
            if i + 1 == report.points.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `json` to `BENCH_chaos.json` at the workspace root, like the
/// sibling bench emitters.
pub fn write_chaos_json(json: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("BENCH_chaos.json not written: {e}"),
    }
}

// ---------------------------------------------------------------------
// Attack economics: campaigns over the fleet, per quarantine policy
// ---------------------------------------------------------------------

/// Honest tenants serving while the attacks-bench probing campaign runs.
pub const ATTACKS_BENCH_HONEST_TENANTS: u32 = 16;

/// Admitted probes per policy in the attacks-bench probing campaign.
pub const ATTACKS_BENCH_PROBES: u32 = 8;

/// Monte-Carlo trials per MAC length in the forgery-scaling sweep.
pub const ATTACKS_BENCH_TRIALS: u64 = 1 << 12;

/// MAC lengths swept (64 is the paper's real parameter — the row the CI
/// pins at zero acceptances).
pub const ATTACKS_BENCH_MAC_BITS: [u32; 4] = [8, 10, 12, 64];

/// Campaign seed.
pub const ATTACKS_BENCH_SEED: u64 = 0xA77AC5;

/// One quarantine policy's row set in the attacks report.
#[derive(Clone, Debug, PartialEq)]
pub struct AttacksPolicyRow {
    /// Stable policy label (`suspend` / `retry_with_reboot` / `evict`).
    pub label: &'static str,
    /// The multi-tenant probing campaign's measurements.
    pub probe: sofia_attacks::campaigns::ProbeCampaignReport,
    /// Per-probe oracle profile (queries/ticks/cycles per probe).
    pub profile: sofia_attacks::campaigns::OracleProfile,
    /// Truncated-MAC scaling rows, re-priced for the policy.
    pub forgery: Vec<sofia_attacks::campaigns::PolicyForgeryRow>,
    /// The migration-tamper sweep under the policy.
    pub migration: sofia_attacks::campaigns::MigrationSweepReport,
    /// Closed-form §IV-A work for the real 64-bit MAC under the policy.
    pub expected_work_64: sofia_attacks::campaigns::ExpectedWork,
}

/// The full attacks report behind `BENCH_attacks.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct AttacksReport {
    /// Host threads of the threaded run (results are asserted identical
    /// to a serial run before this report exists).
    pub threads: usize,
    /// One row per [`sofia_attacks::campaigns::POLICIES`] entry.
    pub rows: Vec<AttacksPolicyRow>,
    /// FNV-1a digest over every row's content.
    pub digest: u64,
}

/// Runs the three campaign families under every quarantine policy and
/// folds them into one report. Every probing campaign is run at 1 host
/// thread and at `threads`, and the two reports are asserted equal
/// field-for-field before anything is emitted — the determinism
/// invariant, applied to security measurements.
pub fn attacks_report(threads: usize) -> AttacksReport {
    use sofia_attacks::campaigns::{
        expected_work, forgery_scaling, migration_sweep, oracle_profile, policy_label,
        probe_campaign, ProbeCampaignConfig, POLICIES,
    };
    let keys = KeySet::from_seed(0x5EC8);
    let mut rows = Vec::new();
    for policy in POLICIES {
        let config = ProbeCampaignConfig {
            policy,
            honest_tenants: ATTACKS_BENCH_HONEST_TENANTS,
            probes: ATTACKS_BENCH_PROBES,
            threads: 1,
            seed: ATTACKS_BENCH_SEED,
        };
        let serial = probe_campaign(&config);
        let probe = probe_campaign(&ProbeCampaignConfig { threads, ..config });
        assert_eq!(
            serial, probe,
            "attack-campaign results under {policy:?} depend on the host thread count"
        );
        assert!(
            probe.bystander_bit_identical,
            "campaign under {policy:?} perturbed a bystander"
        );
        let profile = oracle_profile(policy);
        rows.push(AttacksPolicyRow {
            label: policy_label(policy),
            probe,
            profile,
            forgery: forgery_scaling(
                policy,
                &keys,
                &ATTACKS_BENCH_MAC_BITS,
                ATTACKS_BENCH_TRIALS,
                ATTACKS_BENCH_SEED,
            ),
            migration: migration_sweep(policy, 0),
            expected_work_64: expected_work(&profile, 64),
        });
    }
    let mut digest = 0xcbf29ce484222325u64;
    for row in &rows {
        fnv1a(&mut digest, format!("{row:?}").as_bytes());
    }
    AttacksReport {
        threads,
        rows,
        digest,
    }
}

/// Stable lower-case label for a tenant state in JSON rows.
fn tenant_state_json(state: sofia_fleet::TenantState) -> &'static str {
    match state {
        sofia_fleet::TenantState::Active => "active",
        sofia_fleet::TenantState::Suspended => "suspended",
        sofia_fleet::TenantState::Evicted => "evicted",
    }
}

/// Renders the attacks report as the `BENCH_attacks.json` document.
pub fn attacks_json(report: &AttacksReport) -> String {
    let mut out = String::from("{\n  \"bench\": \"attacks\",\n");
    out.push_str(&format!(
        "  \"threads\": {}, \"honest_tenants\": {}, \"probes\": {}, \"trials\": {},\n",
        report.threads, ATTACKS_BENCH_HONEST_TENANTS, ATTACKS_BENCH_PROBES, ATTACKS_BENCH_TRIALS
    ));
    out.push_str("  \"policies\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        let p = &row.probe;
        out.push_str(&format!(
            "    {{ \"policy\": \"{}\",\n      \"probing\": {{ \"probes_submitted\": {}, \
             \"probes_admitted\": {}, \"probes_refused\": {}, \"detections\": {}, \
             \"successes\": {},\n        \"oracle_queries\": {}, \"attacker_cycles\": {}, \
             \"releases\": {}, \"identities_burned\": {}, \"wall_ticks\": {},\n        \
             \"honest_submitted\": {}, \"honest_finished\": {}, \"honest_clean\": {}, \
             \"bystander_availability\": {:.4}, \"bystander_bit_identical\": {} }},\n",
            row.label,
            p.probes_submitted,
            p.probes_admitted,
            p.probes_refused,
            p.detections,
            p.successes,
            p.oracle_queries,
            p.attacker_cycles,
            p.releases,
            p.identities_burned,
            p.wall_ticks,
            p.honest_submitted,
            p.honest_finished,
            p.honest_clean,
            p.bystander_availability,
            p.bystander_bit_identical,
        ));
        out.push_str(&format!(
            "      \"oracle_profile\": {{ \"queries_per_probe\": {}, \"ticks_per_probe\": {}, \
             \"cycles_per_probe\": {} }},\n",
            row.profile.queries_per_probe,
            row.profile.ticks_per_probe,
            row.profile.cycles_per_probe
        ));
        out.push_str("      \"forgery\": [\n");
        for (j, f) in row.forgery.iter().enumerate() {
            let c = f.campaign;
            out.push_str(&format!(
                "        {{ \"mac_bits\": {}, \"trials\": {}, \"completed\": {}, \
                 \"accepted\": {}, \"measured_rate\": {:.6}, \"expected_probes\": {:.3e}, \
                 \"expected_wall_ticks\": {:.3e} }}{}\n",
                c.mac_bits,
                c.trials,
                c.completed,
                c.accepted,
                c.measured_rate(),
                f.work.probes,
                f.work.wall_ticks,
                if j + 1 == row.forgery.len() { "" } else { "," }
            ));
        }
        out.push_str("      ],\n      \"migration\": [\n");
        for (j, m) in row.migration.rows.iter().enumerate() {
            out.push_str(&format!(
                "        {{ \"variant\": \"{}\", \"outcome\": \"{}\", \"violations\": {}, \
                 \"retried\": {}, \"tenant_after\": \"{}\" }}{}\n",
                m.variant.label(),
                m.outcome.label(),
                m.violations,
                m.retried,
                tenant_state_json(m.tenant_after),
                if j + 1 == row.migration.rows.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        let w = &row.expected_work_64;
        out.push_str(&format!(
            "      ],\n      \"expected_work_64\": {{ \"oracle_queries\": {:.3e}, \
             \"probes\": {:.3e}, \"identities\": {:.3e}, \"wall_ticks\": {:.3e} }} }}{}\n",
            w.oracle_queries,
            w.probes,
            w.identities,
            w.wall_ticks,
            if i + 1 == report.rows.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"digest\": \"{:#018x}\"\n}}\n",
        report.digest
    ));
    out
}

/// Writes `BENCH_attacks.json` at the workspace root.
pub fn write_attacks_json(json: &str) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_attacks.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("BENCH_attacks.json not written: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_consistent_row() {
        let keys = KeySet::from_seed(11);
        let w = sofia_workloads::kernels::fib(50);
        let row = measure(&w, &keys);
        assert!(row.sofia_cycles > row.vanilla_cycles);
        assert!(row.expansion() > 1.3);
        assert!(row.time_overhead_pct() > row.cycle_overhead_pct());
        assert!(!format_row(&row).is_empty());
    }

    #[test]
    fn host_json_schema_is_stable() {
        let report = HostReport {
            box_shape: BoxShape {
                logical_cores: 1,
                arch: "x86_64".into(),
                os: "linux".into(),
                target: "x86_64-unknown-linux-gnu".into(),
            },
            keystream: KeystreamRates {
                blocks: 16,
                scalar_blocks_per_sec: 1e6,
                bitsliced_blocks_per_sec: 8e6,
                default_lanes: 32,
                widths: vec![
                    KeystreamWidthRate {
                        lanes: 16,
                        blocks_per_sec: 6e6,
                    },
                    KeystreamWidthRate {
                        lanes: 32,
                        blocks_per_sec: 8e6,
                    },
                ],
            },
            mips: vec![HostMipsRow {
                machine: "vanilla".into(),
                instret: 1000,
                mips: 12.5,
            }],
            seal: SealRates {
                workload: "adpcm600".into(),
                scalar_seals_per_sec: 10.0,
                bitsliced_seals_per_sec: 25.0,
            },
            seal_farm: vec![
                SealFarmPoint {
                    workers: 1,
                    images: 16,
                    seals_per_sec: 50.0,
                },
                SealFarmPoint {
                    workers: 4,
                    images: 16,
                    seals_per_sec: 150.0,
                },
            ],
            fleet: vec![FleetHostPoint {
                workers: 4,
                pool: "stealing".into(),
                jobs: 24,
                jobs_per_sec: 100.0,
            }],
        };
        assert!((report.keystream.speedup() - 8.0).abs() < 1e-9);
        assert!((report.seal.speedup() - 2.5).abs() < 1e-9);
        let json = host_json(&report);
        for field in [
            "\"bench\": \"host\"",
            "\"profile\"",
            "\"box\": { \"logical_cores\": 1, \"arch\": \"x86_64\"",
            "\"bitsliced_speedup\": 8.00",
            "\"default_lanes\": 32",
            "\"widths\"",
            "\"lanes\": 16, \"blocks_per_sec\": 6000000, \"speedup_vs_scalar\": 6.00",
            "\"machine_mips\"",
            "\"seal\"",
            "\"seal_farm\"",
            "\"workers\": 4, \"images\": 16, \"seals_per_sec\": 150.00, \"speedup_vs_serial\": 3.00",
            "\"fleet_host\"",
            "\"pool\": \"stealing\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn async_wfq_workload_is_thread_invariant_and_backpressured() {
        // A scaled-down point (the bench emits the 1k-tenant one): the
        // full report must be bit-identical across host thread counts,
        // rejections must flow, and the heavy class must see lower tail
        // latency than the light one.
        let serial = async_wfq_report(60, 1);
        let threaded = async_wfq_report(60, 4);
        // Everything but the host-side `threads` knob must match.
        assert_eq!(
            (&serial.stats, &serial.classes, serial.digest),
            (&threaded.stats, &threaded.classes, threaded.digest)
        );
        assert!(serial.stats.rejected > 0);
        assert_eq!(serial.classes.len(), 3);
        let interactive = &serial.classes[0];
        let best_effort = &serial.classes[2];
        assert!(interactive.rejected == 0, "interactive class was capped");
        assert!(best_effort.rejected > 0, "burst class was never capped");
        assert!(
            interactive.p99_sojourn_cycles < best_effort.p99_sojourn_cycles,
            "weight 8 class no faster than weight 1: {} vs {}",
            interactive.p99_sojourn_cycles,
            best_effort.p99_sojourn_cycles
        );
        let json = fleet_json(&[], &[], &serial);
        for field in [
            "\"async_wfq\"",
            "\"label\": \"interactive\"",
            "\"p99_sojourn_cycles\"",
            "\"digest\": \"0x",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }

    #[test]
    fn worker_cap_parsing_is_loud_about_garbage() {
        assert_eq!(parse_worker_cap(None), Ok(None));
        assert_eq!(parse_worker_cap(Some("4")), Ok(Some(4)));
        assert_eq!(parse_worker_cap(Some(" 8 ")), Ok(Some(8)));
        // Zero workers is nonsense; clamp to the serial point.
        assert_eq!(parse_worker_cap(Some("0")), Ok(Some(1)));
        // The regression: these used to silently mean "no cap".
        for bad in ["fouR", "", "4x", "-1", "1e3"] {
            let err = parse_worker_cap(Some(bad)).unwrap_err();
            assert!(
                err.contains("SOFIA_BENCH_MAX_WORKERS") && err.contains(bad),
                "unhelpful error for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn fleet_10k_flag_parsing_is_loud_about_garbage() {
        assert_eq!(parse_fleet_10k(None), Ok(false));
        for on in ["1", "true", " yes ", "on"] {
            assert_eq!(parse_fleet_10k(Some(on)), Ok(true), "{on:?}");
        }
        for off in ["0", "false", "no", "off"] {
            assert_eq!(parse_fleet_10k(Some(off)), Ok(false), "{off:?}");
        }
        let err = parse_fleet_10k(Some("maybe")).unwrap_err();
        assert!(
            err.contains("SOFIA_BENCH_FLEET_10K") && err.contains("maybe"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn host_worker_counts_honour_the_env_cap() {
        // The env var is process-global, so only pin the shape this
        // process actually sees (CI sets the cap in its own process).
        let counts = host_worker_counts();
        assert!(counts.starts_with(&[1]), "serial point always present");
        assert!(counts.iter().all(|&w| [1, 2, 4, 8].contains(&w)));
        if std::env::var("SOFIA_BENCH_MAX_WORKERS").is_err() {
            assert_eq!(counts, vec![1, 2, 4, 8]);
        }
    }

    #[test]
    fn backends_report_orders_the_schemes_and_pins_the_schema() {
        let keys = KeySet::from_seed(0x5EC6);
        let w = sofia_workloads::kernels::crc32(16);
        let report = backends_report(&w, &keys);

        // Cycles: vanilla < fipac < sponge (the serial permute is the
        // most expensive fetch path; FIPAC's check is off it).
        let cycles: std::collections::BTreeMap<&str, u64> = report
            .overhead
            .iter()
            .map(|p| (p.backend, p.cycles))
            .collect();
        assert!(report.vanilla_cycles < cycles["fipac"]);
        assert!(cycles["fipac"] < cycles["sponge"]);
        assert!(report.overhead.iter().all(|p| p.overhead_pct > 0.0));

        // Area: vanilla < fipac < sponge < sofia; FIPAC keeps the
        // vanilla clock.
        let hw: std::collections::BTreeMap<&str, &BackendHwPoint> =
            report.hardware.iter().map(|p| (p.backend, p)).collect();
        assert!(hw["fipac"].slices < hw["sponge"].slices);
        assert!(hw["sponge"].slices < hw["sofia"].slices);
        assert!((hw["fipac"].clock_mhz - hw["vanilla"].clock_mhz).abs() < 1e-9);

        // Detection latency: SOFIA refuses the block before the tampered
        // slot, the sponge flags within a couple of garbage decodes, and
        // FIPAC runs to the halt signature — the deferral is the entire
        // remaining sled.
        let lat: std::collections::BTreeMap<&str, u64> = report
            .detection
            .iter()
            .map(|p| (p.backend, p.latency_instructions))
            .collect();
        assert_eq!(lat["sofia"], 0);
        assert!(lat["sponge"] <= 4, "sponge latency {}", lat["sponge"]);
        assert_eq!(
            lat["fipac"],
            (BACKENDS_SLED_WORDS + 1 - BACKENDS_TAMPER_WORD) as u64
        );

        let json = backends_json(&report);
        for field in [
            "\"bench\": \"backends\"",
            "\"workload\": \"crc32\"",
            "\"overhead\"",
            "\"backend\": \"sponge\"",
            "\"backend\": \"fipac\"",
            "\"hardware\"",
            "\"detection_latency\"",
            "\"sled_words\": 64",
            "\"attack_matrix\"",
            "\"attack\": \"word-tamper\"",
            "\"fipac\": \"compromised-flagged\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn attacks_report_prices_every_policy_and_emits_a_stable_schema() {
        let report = attacks_report(2);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(
            report.rows.iter().map(|r| r.label).collect::<Vec<_>>(),
            ["suspend", "retry_with_reboot", "evict"]
        );
        for row in &report.rows {
            assert_eq!(row.probe.successes, 0);
            assert_eq!(row.probe.detections, row.probe.probes_admitted);
            assert!(row.probe.bystander_bit_identical);
            let full = row.forgery.iter().find(|f| f.campaign.mac_bits == 64);
            assert_eq!(full.expect("64-bit row").campaign.accepted, 0);
        }
        // The retry policy hands the attacker the cheapest oracle; evict
        // makes every probe cost a fresh identity.
        let by_label = |l: &str| report.rows.iter().find(|r| r.label == l).unwrap();
        assert!(
            by_label("retry_with_reboot").profile.queries_per_probe
                > by_label("suspend").profile.queries_per_probe
        );
        assert_eq!(by_label("evict").expected_work_64.identities, {
            by_label("evict").expected_work_64.probes
        });
        assert_eq!(by_label("suspend").expected_work_64.identities, 1.0);

        let json = attacks_json(&report);
        for field in [
            "\"bench\": \"attacks\"",
            "\"policy\": \"suspend\"",
            "\"policy\": \"retry_with_reboot\"",
            "\"policy\": \"evict\"",
            "\"probing\"",
            "\"successes\": 0",
            "\"bystander_bit_identical\": true",
            "\"oracle_profile\"",
            "\"mac_bits\": 64",
            "\"variant\": \"bit_flip_in_transit\"",
            "\"outcome\": \"detected_in_transit\"",
            "\"expected_work_64\"",
            "\"digest\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // Same inputs, same digest: the report re-runs bit-identically.
        assert_eq!(attacks_report(2).digest, report.digest);
    }

    #[test]
    fn vcache_row_orders_the_three_machines() {
        let keys = KeySet::from_seed(12);
        let w = sofia_workloads::kernels::fib(200);
        let row = vcache_row(&w, &keys, VCacheConfig::enabled(64, 4));
        assert!(row.vanilla_cycles < row.sofia_cached_cycles);
        assert!(row.sofia_cached_cycles < row.sofia_uncached_cycles);
        assert!(row.reduction() > 0.2, "reduction {}", row.reduction());
        let json = vcache_rows_json(VCacheConfig::enabled(64, 4), &[row]);
        assert!(json.contains("\"bench\": \"vcache\""));
        assert!(json.contains("\"name\": \"fib\""));
    }
}
