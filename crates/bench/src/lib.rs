//! # sofia-bench — measurement helpers for the reproduction harness
//!
//! Shared machinery for the `repro` binary (which regenerates every table
//! and figure of the paper, see `DESIGN.md` §3) and the Criterion
//! benches: run a workload on both machines under arbitrary
//! configurations and reduce the statistics to the paper's metrics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sofia_core::machine::SofiaMachine;
use sofia_core::{SofiaConfig, SofiaStats, VCacheConfig};
use sofia_cpu::machine::VanillaMachine;
use sofia_cpu::ExecStats;
use sofia_crypto::KeySet;
use sofia_transform::{BlockFormat, TransformReport, Transformer};
use sofia_workloads::Workload;

/// Fuel for measurement runs.
pub const FUEL: u64 = 500_000_000;

/// One row of a §IV-B-style overhead table.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Workload name.
    pub name: String,
    /// Plain text-section size in bytes.
    pub text_in: usize,
    /// Sealed text-section size in bytes.
    pub text_out: usize,
    /// Baseline cycles.
    pub vanilla_cycles: u64,
    /// SOFIA cycles.
    pub sofia_cycles: u64,
    /// Full SOFIA statistics (for breakdowns).
    pub sofia: SofiaStats,
    /// Baseline statistics.
    pub vanilla: ExecStats,
    /// Transformation report.
    pub report: TransformReport,
}

impl OverheadRow {
    /// Code-size expansion factor (paper: 2.41× for ADPCM).
    pub fn expansion(&self) -> f64 {
        self.text_out as f64 / self.text_in as f64
    }

    /// Cycle overhead in percent (paper: 13.7 % for ADPCM).
    pub fn cycle_overhead_pct(&self) -> f64 {
        (self.sofia_cycles as f64 / self.vanilla_cycles as f64 - 1.0) * 100.0
    }

    /// Total execution-time overhead in percent, combining cycles with
    /// the Table I clocks (paper: 110 % for ADPCM).
    pub fn time_overhead_pct(&self) -> f64 {
        let (v, s) = sofia_hwmodel::table1();
        let vanilla_time = self.vanilla_cycles as f64 * v.period_ns;
        let sofia_time = self.sofia_cycles as f64 * s.period_ns;
        (sofia_time / vanilla_time - 1.0) * 100.0
    }
}

/// Runs `workload` on both machines with the given SOFIA configuration
/// and block format, verifying outputs against the golden model.
///
/// # Panics
///
/// Panics if either machine misbehaves — measurement runs must be
/// correct runs.
pub fn measure_with(
    workload: &Workload,
    keys: &KeySet,
    format: BlockFormat,
    config: &SofiaConfig,
) -> OverheadRow {
    // Vanilla (same baseline machine parameters as the SOFIA config, so
    // the comparison isolates the security architecture).
    let assembly = workload.assembly();
    let mut vm = VanillaMachine::with_config(&assembly, &config.machine);
    let vr = vm.run(FUEL).expect("vanilla run traps");
    assert!(vr.is_halted(), "{}: vanilla did not halt", workload.name);
    assert_eq!(
        vm.mem().mmio.out_words,
        workload.expected,
        "{}: vanilla output mismatch",
        workload.name
    );

    // SOFIA.
    let image = Transformer::new(keys.clone())
        .with_format(format)
        .transform(&workload.module())
        .expect("workload transforms");
    let report = image.report.clone();
    let mut sm = SofiaMachine::with_config(&image, keys, config);
    let sr = sm.run(FUEL).expect("sofia run traps");
    assert!(sr.is_halted(), "{}: sofia outcome {sr:?}", workload.name);
    assert_eq!(
        sm.mem().mmio.out_words,
        workload.expected,
        "{}: sofia output mismatch",
        workload.name
    );

    OverheadRow {
        name: workload.name.to_string(),
        text_in: assembly.text_bytes(),
        text_out: image.text_bytes(),
        vanilla_cycles: vm.stats().cycles,
        sofia_cycles: sm.stats().exec.cycles,
        sofia: sm.stats(),
        vanilla: vm.stats(),
        report,
    }
}

/// [`measure_with`] under default configuration and block format.
pub fn measure(workload: &Workload, keys: &KeySet) -> OverheadRow {
    measure_with(
        workload,
        keys,
        BlockFormat::default(),
        &SofiaConfig::default(),
    )
}

/// Formats a row of the overhead table.
pub fn format_row(r: &OverheadRow) -> String {
    format!(
        "{:<12} {:>8} B {:>8} B  {:>5.2}x {:>12} {:>12} {:>+8.1}% {:>+8.1}%",
        r.name,
        r.text_in,
        r.text_out,
        r.expansion(),
        r.vanilla_cycles,
        r.sofia_cycles,
        r.cycle_overhead_pct(),
        r.time_overhead_pct(),
    )
}

/// Header matching [`format_row`].
pub fn row_header() -> String {
    format!(
        "{:<12} {:>10} {:>10}  {:>6} {:>12} {:>12} {:>9} {:>9}",
        "workload", "text", "sealed", "exp", "van cycles", "sofia cyc", "cyc ovh", "time ovh"
    )
}

/// One row of the verified-block-cache trajectory: the same workload's
/// cycle count on the vanilla machine, the uncached SOFIA machine, and
/// the cached SOFIA machine.
#[derive(Clone, Debug)]
pub struct VCacheRow {
    /// Workload name.
    pub name: String,
    /// Baseline cycles.
    pub vanilla_cycles: u64,
    /// SOFIA cycles with the cache disabled.
    pub sofia_uncached_cycles: u64,
    /// SOFIA cycles with the cache enabled.
    pub sofia_cached_cycles: u64,
    /// Cache hits / misses of the cached run.
    pub vcache_hits: u64,
    /// Cache misses of the cached run.
    pub vcache_misses: u64,
}

impl VCacheRow {
    /// Fraction of the uncached SOFIA cycles the cache recovered.
    pub fn reduction(&self) -> f64 {
        1.0 - self.sofia_cached_cycles as f64 / self.sofia_uncached_cycles as f64
    }
}

/// Measures `workload` on all three machines under `vcache` (simulated
/// cycles: deterministic, host-independent).
///
/// # Panics
///
/// Panics if any machine misbehaves — measurement runs must be correct
/// runs.
pub fn vcache_row(workload: &Workload, keys: &KeySet, vcache: VCacheConfig) -> VCacheRow {
    let vanilla = workload
        .verify_on_vanilla()
        .expect("vanilla verifies")
        .cycles;
    let image = workload.secure_image(keys);
    let mut uncached = SofiaMachine::new(&image, keys);
    assert!(uncached.run(FUEL).expect("uncached traps").is_halted());
    let config = SofiaConfig {
        vcache,
        ..Default::default()
    };
    let mut cached = SofiaMachine::with_config(&image, keys, &config);
    assert!(cached.run(FUEL).expect("cached traps").is_halted());
    assert_eq!(
        cached.mem().mmio.out_words,
        workload.expected,
        "{}: cached output mismatch",
        workload.name
    );
    let cs = cached.stats();
    VCacheRow {
        name: workload.name.to_string(),
        vanilla_cycles: vanilla,
        sofia_uncached_cycles: uncached.stats().exec.cycles,
        sofia_cached_cycles: cs.exec.cycles,
        vcache_hits: cs.vcache_hits,
        vcache_misses: cs.vcache_misses,
    }
}

/// Serialises rows to the `BENCH_vcache.json` schema: a stable,
/// machine-independent record of the perf trajectory (simulated cycles
/// only — no wall-clock noise).
pub fn vcache_rows_json(vcache: VCacheConfig, rows: &[VCacheRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"vcache\",\n");
    out.push_str(&format!(
        "  \"vcache\": {{ \"entries\": {}, \"ways\": {}, \"hit_latency\": {} }},\n",
        vcache.entries, vcache.ways, vcache.hit_latency
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"vanilla_cycles\": {}, \"sofia_uncached_cycles\": {}, \
             \"sofia_cached_cycles\": {}, \"vcache_hits\": {}, \"vcache_misses\": {}, \
             \"reduction_pct\": {:.2} }}{}\n",
            r.name,
            r.vanilla_cycles,
            r.sofia_uncached_cycles,
            r.sofia_cached_cycles,
            r.vcache_hits,
            r.vcache_misses,
            r.reduction() * 100.0,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_consistent_row() {
        let keys = KeySet::from_seed(11);
        let w = sofia_workloads::kernels::fib(50);
        let row = measure(&w, &keys);
        assert!(row.sofia_cycles > row.vanilla_cycles);
        assert!(row.expansion() > 1.3);
        assert!(row.time_overhead_pct() > row.cycle_overhead_pct());
        assert!(!format_row(&row).is_empty());
    }

    #[test]
    fn vcache_row_orders_the_three_machines() {
        let keys = KeySet::from_seed(12);
        let w = sofia_workloads::kernels::fib(200);
        let row = vcache_row(&w, &keys, VCacheConfig::enabled(64, 4));
        assert!(row.vanilla_cycles < row.sofia_cached_cycles);
        assert!(row.sofia_cached_cycles < row.sofia_uncached_cycles);
        assert!(row.reduction() > 0.2, "reduction {}", row.reduction());
        let json = vcache_rows_json(VCacheConfig::enabled(64, 4), &[row]);
        assert!(json.contains("\"bench\": \"vcache\""));
        assert!(json.contains("\"name\": \"fib\""));
    }
}
