//! # sofia-bench — measurement helpers for the reproduction harness
//!
//! Shared machinery for the `repro` binary (which regenerates every table
//! and figure of the paper, see `DESIGN.md` §3) and the Criterion
//! benches: run a workload on both machines under arbitrary
//! configurations and reduce the statistics to the paper's metrics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use sofia_core::machine::SofiaMachine;
use sofia_core::{SofiaConfig, SofiaStats};
use sofia_cpu::machine::VanillaMachine;
use sofia_cpu::ExecStats;
use sofia_crypto::KeySet;
use sofia_transform::{BlockFormat, TransformReport, Transformer};
use sofia_workloads::Workload;

/// Fuel for measurement runs.
pub const FUEL: u64 = 500_000_000;

/// One row of a §IV-B-style overhead table.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Workload name.
    pub name: String,
    /// Plain text-section size in bytes.
    pub text_in: usize,
    /// Sealed text-section size in bytes.
    pub text_out: usize,
    /// Baseline cycles.
    pub vanilla_cycles: u64,
    /// SOFIA cycles.
    pub sofia_cycles: u64,
    /// Full SOFIA statistics (for breakdowns).
    pub sofia: SofiaStats,
    /// Baseline statistics.
    pub vanilla: ExecStats,
    /// Transformation report.
    pub report: TransformReport,
}

impl OverheadRow {
    /// Code-size expansion factor (paper: 2.41× for ADPCM).
    pub fn expansion(&self) -> f64 {
        self.text_out as f64 / self.text_in as f64
    }

    /// Cycle overhead in percent (paper: 13.7 % for ADPCM).
    pub fn cycle_overhead_pct(&self) -> f64 {
        (self.sofia_cycles as f64 / self.vanilla_cycles as f64 - 1.0) * 100.0
    }

    /// Total execution-time overhead in percent, combining cycles with
    /// the Table I clocks (paper: 110 % for ADPCM).
    pub fn time_overhead_pct(&self) -> f64 {
        let (v, s) = sofia_hwmodel::table1();
        let vanilla_time = self.vanilla_cycles as f64 * v.period_ns;
        let sofia_time = self.sofia_cycles as f64 * s.period_ns;
        (sofia_time / vanilla_time - 1.0) * 100.0
    }
}

/// Runs `workload` on both machines with the given SOFIA configuration
/// and block format, verifying outputs against the golden model.
///
/// # Panics
///
/// Panics if either machine misbehaves — measurement runs must be
/// correct runs.
pub fn measure_with(
    workload: &Workload,
    keys: &KeySet,
    format: BlockFormat,
    config: &SofiaConfig,
) -> OverheadRow {
    // Vanilla (same baseline machine parameters as the SOFIA config, so
    // the comparison isolates the security architecture).
    let assembly = workload.assembly();
    let mut vm = VanillaMachine::with_config(&assembly, &config.machine);
    let vr = vm.run(FUEL).expect("vanilla run traps");
    assert!(vr.is_halted(), "{}: vanilla did not halt", workload.name);
    assert_eq!(
        vm.mem().mmio.out_words,
        workload.expected,
        "{}: vanilla output mismatch",
        workload.name
    );

    // SOFIA.
    let image = Transformer::new(keys.clone())
        .with_format(format)
        .transform(&workload.module())
        .expect("workload transforms");
    let report = image.report.clone();
    let mut sm = SofiaMachine::with_config(&image, keys, config);
    let sr = sm.run(FUEL).expect("sofia run traps");
    assert!(sr.is_halted(), "{}: sofia outcome {sr:?}", workload.name);
    assert_eq!(
        sm.mem().mmio.out_words,
        workload.expected,
        "{}: sofia output mismatch",
        workload.name
    );

    OverheadRow {
        name: workload.name.to_string(),
        text_in: assembly.text_bytes(),
        text_out: image.text_bytes(),
        vanilla_cycles: vm.stats().cycles,
        sofia_cycles: sm.stats().exec.cycles,
        sofia: sm.stats(),
        vanilla: vm.stats(),
        report,
    }
}

/// [`measure_with`] under default configuration and block format.
pub fn measure(workload: &Workload, keys: &KeySet) -> OverheadRow {
    measure_with(
        workload,
        keys,
        BlockFormat::default(),
        &SofiaConfig::default(),
    )
}

/// Formats a row of the overhead table.
pub fn format_row(r: &OverheadRow) -> String {
    format!(
        "{:<12} {:>8} B {:>8} B  {:>5.2}x {:>12} {:>12} {:>+8.1}% {:>+8.1}%",
        r.name,
        r.text_in,
        r.text_out,
        r.expansion(),
        r.vanilla_cycles,
        r.sofia_cycles,
        r.cycle_overhead_pct(),
        r.time_overhead_pct(),
    )
}

/// Header matching [`format_row`].
pub fn row_header() -> String {
    format!(
        "{:<12} {:>10} {:>10}  {:>6} {:>12} {:>12} {:>9} {:>9}",
        "workload", "text", "sealed", "exp", "van cycles", "sofia cyc", "cyc ovh", "time ovh"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_consistent_row() {
        let keys = KeySet::from_seed(11);
        let w = sofia_workloads::kernels::fib(50);
        let row = measure(&w, &keys);
        assert!(row.sofia_cycles > row.vanilla_cycles);
        assert!(row.expansion() > 1.3);
        assert!(row.time_overhead_pct() > row.cycle_overhead_pct());
        assert!(!format_row(&row).is_empty());
    }
}
