//! Monte-Carlo MAC forgery: the empirical half of §IV-A.
//!
//! The closed form says an `n`-bit MAC accepts a random forgery with
//! probability `2^{-n}` and thus costs `2^{n-1}` expected online trials.
//! A 64-bit MAC cannot be brute-forced in a simulation (that is the
//! point), so this experiment measures acceptance on **truncated** MACs
//! (8–20 bits), verifies the exponential scaling empirically, and lets
//! the closed form extrapolate to the paper's 46,795 / 93,590 years.

use sofia_crypto::util::SplitMix64;
use sofia_crypto::{ctr, mac, CounterBlock, KeySet, Mac64, Nonce};
use sofia_transform::{BlockFormat, BlockKind};

/// Result of a forgery campaign at one MAC length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForgeryCampaign {
    /// MAC length in bits.
    pub mac_bits: u32,
    /// Forgery attempts the campaign was asked for.
    pub trials: u64,
    /// Attempts actually completed. Equal to `trials` unless the sweep
    /// was cut short — an online campaign whose probing tenant is
    /// evicted mid-sweep stops early, and rates must be honest about
    /// the denominator that really ran.
    pub completed: u64,
    /// Attempts that passed the (truncated) verification.
    pub accepted: u64,
    /// Expected acceptances per the closed form, over the *completed*
    /// trials.
    pub expected: f64,
}

impl ForgeryCampaign {
    /// Measured acceptance probability over the trials that actually
    /// ran. An empty campaign (zero completed trials) measured nothing
    /// and reports 0.0 — never NaN, which would poison every digest and
    /// JSON row downstream.
    pub fn measured_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.completed as f64
        }
    }
}

/// Runs `trials` random block forgeries against a defender with the
/// given keys, accepting when the low `mac_bits` of the recomputed MAC
/// match the decrypted stored MAC — exactly the hardware check, truncated.
///
/// Each trial models the §IV-A adversary: submit a random ciphertext
/// block at a fixed location and see whether verification passes.
pub fn run_campaign(keys: &KeySet, mac_bits: u32, trials: u64, seed: u64) -> ForgeryCampaign {
    run_campaign_capped(keys, mac_bits, trials, seed, u64::MAX)
}

/// As [`run_campaign`], but the defender cuts the attacker off after
/// `oracle_budget` verification queries — the shape of an online sweep
/// whose tenant is quarantined or evicted before the requested trial
/// count: `completed` records how far the campaign actually got, and
/// [`ForgeryCampaign::measured_rate`] divides by that, not by `trials`.
pub fn run_campaign_capped(
    keys: &KeySet,
    mac_bits: u32,
    trials: u64,
    seed: u64,
    oracle_budget: u64,
) -> ForgeryCampaign {
    let format = BlockFormat::default();
    let expanded = keys.expand();
    let nonce = Nonce::new(0xA7);
    let base = format.text_base();
    let mut rng = SplitMix64::new(seed);
    let mut accepted = 0u64;
    let bw = format.block_words();
    let completed = trials.min(oracle_budget);
    for _ in 0..completed {
        // Random forged ciphertext block.
        let forged: Vec<u32> = (0..bw).map(|_| rng.next_u64() as u32).collect();
        // Defender decrypts along the exec-entry chain (prev = reset) and
        // verifies.
        let mut prev = 0u32;
        let mut plain = Vec::with_capacity(bw);
        for (w, &c) in forged.iter().enumerate() {
            let pc = base + 4 * w as u32;
            plain.push(ctr::apply(
                &expanded.ctr,
                CounterBlock::from_edge(nonce, prev, pc),
                c,
            ));
            prev = pc;
        }
        let stored = Mac64::from_words(plain[0], plain[1]);
        let computed = mac::mac_words(
            &expanded.mac_exec,
            &plain[2..],
            format.mac_padded_words(BlockKind::Exec),
        );
        if computed.truncate(mac_bits) == stored.truncate(mac_bits) {
            accepted += 1;
        }
    }
    ForgeryCampaign {
        mac_bits,
        trials,
        completed,
        accepted,
        expected: completed as f64 * sofia_core::security::forgery_success_probability(mac_bits),
    }
}

/// Sweeps MAC lengths, returning one campaign per length — the series
/// behind the §IV-A scaling argument.
pub fn scaling_series(keys: &KeySet, bits: &[u32], trials: u64, seed: u64) -> Vec<ForgeryCampaign> {
    bits.iter()
        .map(|&b| run_campaign(keys, b, trials, seed ^ b as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_tracks_two_to_minus_n() {
        let keys = KeySet::from_seed(0xF0);
        // 8-bit MAC, 64k trials: expect ~256 acceptances.
        let c = run_campaign(&keys, 8, 1 << 16, 1);
        assert!(
            (128..=512).contains(&c.accepted),
            "8-bit: {} accepted",
            c.accepted
        );
        // 16-bit MAC, 64k trials: expect ~1.
        let c = run_campaign(&keys, 16, 1 << 16, 2);
        assert!(c.accepted <= 16, "16-bit: {} accepted", c.accepted);
    }

    #[test]
    fn scaling_is_monotonically_harder() {
        let keys = KeySet::from_seed(0xF1);
        let series = scaling_series(&keys, &[4, 8, 12], 1 << 14, 3);
        assert!(series[0].accepted > series[1].accepted);
        assert!(series[1].accepted >= series[2].accepted);
    }

    #[test]
    fn full_mac_never_accepts_in_reasonable_trials() {
        let keys = KeySet::from_seed(0xF2);
        let c = run_campaign(&keys, 64, 1 << 12, 4);
        assert_eq!(c.accepted, 0);
        assert_eq!(c.completed, c.trials);
    }

    #[test]
    fn empty_campaign_measures_zero_not_nan() {
        let keys = KeySet::from_seed(0xF3);
        let c = run_campaign(&keys, 8, 0, 5);
        assert_eq!((c.trials, c.completed, c.accepted), (0, 0, 0));
        assert_eq!(c.measured_rate(), 0.0);
        assert!(c.measured_rate().is_finite());
    }

    #[test]
    fn capped_campaign_reports_honest_denominators() {
        let keys = KeySet::from_seed(0xF4);
        // The sweep asked for 4096 trials but the oracle cut it off at
        // 512 — the evicted-mid-sweep shape.
        let c = run_campaign_capped(&keys, 8, 1 << 12, 6, 512);
        assert_eq!(c.trials, 1 << 12);
        assert_eq!(c.completed, 512);
        // The rate and the closed-form expectation both use the trials
        // that ran, and the capped prefix is bit-identical to the same
        // seed's uncapped prefix (the cap aborts, it does not reseed).
        assert_eq!(c.expected, 2.0);
        let full = run_campaign(&keys, 8, 512, 6);
        assert_eq!(c.accepted, full.accepted);
        // A zero-budget cut-off measures nothing and says so.
        let none = run_campaign_capped(&keys, 8, 1 << 12, 6, 0);
        assert_eq!(none.completed, 0);
        assert_eq!(none.measured_rate(), 0.0);
    }
}
