//! Block-relocation and splicing attacks.
//!
//! §I of the paper criticises ECB-mode ISR because it "seems to allow an
//! attacker to relocate encrypted instructions without leading to
//! decryption errors". SOFIA binds every word to its address (PC in the
//! counter) and to its block (MAC), so any relocation garbles and any
//! splice fails verification. These experiments demonstrate both, plus
//! cross-version splicing (nonce separation) and the vanilla machine's
//! silent acceptance of the same tampering.

use sofia_core::machine::SofiaMachine;
use sofia_core::SofiaConfig;
use sofia_cpu::machine::VanillaMachine;
use sofia_crypto::{KeySet, Nonce};
use sofia_isa::asm;
use sofia_transform::Transformer;

use crate::injection::classify_sofia_run;
use crate::victims::{control_loop_expected, control_loop_victim};
use crate::{Verdict, FUEL};

/// Swaps two whole blocks of the SOFIA ciphertext (attacker splicing
/// code they cannot read).
pub fn swap_blocks_sofia(keys: &KeySet, a: usize, b: usize) -> Verdict {
    swap_blocks_sofia_with(keys, &SofiaConfig::default(), a, b)
}

/// [`swap_blocks_sofia`] under an arbitrary machine configuration.
pub fn swap_blocks_sofia_with(keys: &KeySet, config: &SofiaConfig, a: usize, b: usize) -> Verdict {
    let module = asm::parse(&control_loop_victim(8)).expect("victim parses");
    let image = Transformer::new(keys.clone())
        .transform(&module)
        .expect("victim transforms");
    let bw = image.format.block_words();
    assert!(a != b && (a + 1) * bw <= image.ctext.len() && (b + 1) * bw <= image.ctext.len());
    let mut m = SofiaMachine::with_config(&image, keys, config);
    for w in 0..bw {
        m.mem_mut().rom_mut().swap(a * bw + w, b * bw + w);
    }
    classify_sofia_run(m)
}

/// The same wholesale swap on the **unprotected** machine: execution
/// continues with reordered code and produces a silently wrong result.
pub fn swap_code_vanilla() -> Verdict {
    let program = asm::assemble(&control_loop_victim(8)).expect("victim assembles");
    let expected = control_loop_expected(8);
    let mut m = VanillaMachine::new(&program);
    // Swap the sensor load `lw t0, 0(s0)` with the accumulate
    // `add s2, s2, t0`: the accumulate then consumes a stale `t0`,
    // shifting the whole sum by one sample — silently wrong output.
    let rom = m.mem_mut().rom_mut();
    let lw_idx = rom
        .iter()
        .position(|&w| {
            sofia_isa::Instruction::decode(w)
                == Ok(sofia_isa::Instruction::Lw {
                    rt: sofia_isa::Reg::T0,
                    base: sofia_isa::Reg::S0,
                    offset: 0,
                })
        })
        .expect("victim has the sensor load");
    let add_idx = rom
        .iter()
        .position(|&w| {
            sofia_isa::Instruction::decode(w)
                == Ok(sofia_isa::Instruction::Add {
                    rd: sofia_isa::Reg::S2,
                    rs: sofia_isa::Reg::S2,
                    rt: sofia_isa::Reg::T0,
                })
        })
        .expect("victim has the accumulate");
    rom.swap(lw_idx, add_idx);
    match m.run(FUEL) {
        Ok(r) if r.is_halted() => {
            let out = &m.mem().mmio.out_words;
            if *out != expected {
                Verdict::Compromised {
                    detail: format!("silently wrong output {out:x?} (expected {expected:x?})"),
                }
            } else {
                Verdict::Neutralized {
                    detail: "output unchanged".into(),
                }
            }
        }
        Ok(_) => Verdict::Neutralized {
            detail: "did not halt".into(),
        },
        Err(t) => Verdict::Crashed { trap: t },
    }
}

/// Splices a block from *version 2* of the program (same keys, different
/// nonce ω) into version 1 — the downgrade/mix-and-match attack the
/// per-program nonce exists to stop.
pub fn cross_version_splice(keys: &KeySet) -> Verdict {
    cross_version_splice_with(keys, &SofiaConfig::default())
}

/// [`cross_version_splice`] under an arbitrary machine configuration.
pub fn cross_version_splice_with(keys: &KeySet, config: &SofiaConfig) -> Verdict {
    let module = asm::parse(&control_loop_victim(8)).expect("victim parses");
    let v1 = Transformer::new(keys.clone())
        .with_nonce(Nonce::new(1))
        .transform(&module)
        .expect("v1 transforms");
    let v2 = Transformer::new(keys.clone())
        .with_nonce(Nonce::new(2))
        .transform(&module)
        .expect("v2 transforms");
    let bw = v1.format.block_words();
    let mut m = SofiaMachine::with_config(&v1, keys, config);
    // Replace v1's second block with v2's bit-for-bit (same program, so
    // same plaintext — only ω differs).
    for w in 0..bw {
        m.mem_mut().rom_mut()[bw + w] = v2.ctext[bw + w];
    }
    classify_sofia_run(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_accepts_reordered_code_silently() {
        let v = swap_code_vanilla();
        assert!(v.is_compromised(), "{v}");
    }

    #[test]
    fn sofia_detects_block_swaps() {
        let keys = KeySet::from_seed(77);
        let v = swap_blocks_sofia(&keys, 0, 1);
        assert!(v.is_detected(), "{v}");
        let v = swap_blocks_sofia(&keys, 1, 2);
        assert!(v.is_detected(), "{v}");
    }

    #[test]
    fn sofia_detects_cross_version_splice() {
        let keys = KeySet::from_seed(78);
        let v = cross_version_splice(&keys);
        assert!(v.is_detected(), "{v}");
    }
}
