//! Fleet-scale attack campaigns: §IV-A economics at the service boundary.
//!
//! The paper prices a forgery in *offline* terms — an `n`-bit MAC costs
//! `2^{n-1}` expected trials. A fleet changes the units: the attacker is
//! a **tenant**, every trial is a **job submission** through admission
//! control, every detection triggers a [`QuarantinePolicy`] that decides
//! how soon (and at what price) the next trial can run. These campaigns
//! drive the adversary through the real fleet API and measure that
//! price per policy:
//!
//! * [`probe_campaign`] — one attacker tenant sprays tampered images
//!   while honest tenants serve, measuring detections, oracle queries,
//!   lockouts, burned identities and — the isolation claim — that
//!   bystander results stay bit-identical to an attacker-free fleet;
//! * [`forgery_scaling`] — the truncated-MAC Monte-Carlo of
//!   [`crate::forgery`] re-priced per policy: `RetryWithReboot` hands
//!   the attacker extra verification queries per submission (the reboot
//!   budget re-verifies the same tampered image), `Evict` cuts the
//!   sweep off when the identity budget runs dry (`completed < trials`);
//! * [`migration_sweep`] — snapshot-in-transit tampering over the
//!   `checkpoint_job`/`adopt_job` migration path, classifying *where*
//!   each tamper is caught and what the adopting fleet's policy does to
//!   the tenant afterwards;
//! * [`expected_work`] — the closed-form §IV-A attacker work per
//!   compromised tenant, extended with the per-policy service costs the
//!   campaigns measure.

use sofia_crypto::KeySet;
use sofia_fleet::{
    AdmitError, AsyncConfig, AsyncFleet, ClassId, Fleet, FleetConfig, JobCheckpoint, JobRecord,
    JobSpec, QuarantinePolicy, Sabotage, SchedMode, TenantId, TenantState,
};

use crate::forgery::{run_campaign_capped, ForgeryCampaign};
use crate::victims;

/// The three policies every campaign sweeps, in emission order.
pub const POLICIES: [QuarantinePolicy; 3] = [
    QuarantinePolicy::Suspend,
    QuarantinePolicy::RetryWithReboot { max_resets: 3 },
    QuarantinePolicy::Evict,
];

/// Stable lower-case label for a policy (JSON keys, table rows).
pub fn policy_label(policy: QuarantinePolicy) -> &'static str {
    match policy {
        QuarantinePolicy::Suspend => "suspend",
        QuarantinePolicy::RetryWithReboot { .. } => "retry_with_reboot",
        QuarantinePolicy::Evict => "evict",
    }
}

/// Operator model: a suspended tenant is investigated and released this
/// many ticks after its quarantine — the lockout a probing attacker
/// pays per detection under [`QuarantinePolicy::Suspend`] (and after a
/// failed reboot-retry).
pub const RELEASE_LATENCY_TICKS: u64 = 16;

/// Cost model: ticks to acquire a fresh tenant identity after an
/// eviction. Pricier than waiting out a release — identities are the
/// scarce resource `Evict` spends the attacker down on.
pub const IDENTITY_COST_TICKS: u64 = 64;

/// Online identity budget assumed for an [`QuarantinePolicy::Evict`]
/// sweep: each identity buys the probes until its first detection, and
/// the campaign stops when the budget is gone.
pub const EVICT_IDENTITY_BUDGET: u64 = 1 << 10;

/// Fuel per probe / honest job in the campaigns.
const CAMPAIGN_FUEL: u64 = 2_000_000;

/// Deterministic LCG over campaign decisions (arrival ticks, probe
/// tamper positions). Same constants as the WFQ bench generator.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A short counted loop storing its result — the honest tenants' unit
/// of work, sized by `n` so records differ across jobs.
fn honest_src(n: u32) -> String {
    format!(
        "main: li t0, {n}
         li t1, 0
         loop: add t1, t1, t0
               subi t0, t0, 1
               bnez t0, loop
               li a0, 0xFFFF0000
               sw t1, 0(a0)
               halt"
    )
}

// ---------------------------------------------------------------------
// Probing at scale
// ---------------------------------------------------------------------

/// Configuration of one [`probe_campaign`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeCampaignConfig {
    /// Quarantine policy under test.
    pub policy: QuarantinePolicy,
    /// Honest tenants serving while the attacker probes.
    pub honest_tenants: u32,
    /// Attacker probe budget: the campaign runs until this many probes
    /// were *admitted* and resolved (refused attempts don't count —
    /// they are part of the price, tallied separately).
    pub probes: u32,
    /// Host threads for the async driver — results must be identical at
    /// any value; the bench asserts 1 ≡ 4 before emission.
    pub threads: usize,
    /// Seed for arrivals and tamper positions.
    pub seed: u64,
}

/// What one probing campaign measured.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbeCampaignReport {
    /// Policy under test.
    pub policy: QuarantinePolicy,
    /// Probe submissions attempted (admitted or refused).
    pub probes_submitted: u64,
    /// Probes accepted by admission control.
    pub probes_admitted: u64,
    /// Probes refused at the submission boundary (quarantined/evicted
    /// identity — the admission system doing the quarantine's work).
    pub probes_refused: u64,
    /// Probe records whose tampered image was detected (violations
    /// logged or a violation verdict).
    pub detections: u64,
    /// Probe records that ran to a clean halt — a successful forgery.
    /// Zero at the full 64-bit MAC; the CI pin.
    pub successes: u64,
    /// MAC-verification oracle queries the fleet granted the attacker:
    /// total violations logged across probe records. `RetryWithReboot`
    /// amplifies this — the reboot budget re-verifies the tampered
    /// image `max_resets + 1` extra times per probe.
    pub oracle_queries: u64,
    /// Simulated cycles the fleet burned on attacker jobs.
    pub attacker_cycles: u64,
    /// Operator releases the attacker consumed (suspension lockouts
    /// waited out).
    pub releases: u64,
    /// Attacker identities evicted and re-registered.
    pub identities_burned: u64,
    /// Ticks the whole campaign took.
    pub wall_ticks: u64,
    /// Honest jobs submitted / finished / finished-clean.
    pub honest_submitted: u64,
    /// Honest jobs that produced a record.
    pub honest_finished: u64,
    /// Honest records that halted clean.
    pub honest_clean: u64,
    /// `honest_finished / honest_submitted` — service availability for
    /// bystanders while the campaign ran.
    pub bystander_availability: f64,
    /// Whether every honest record (outcome, outputs, violations,
    /// cycles, instret) is bit-identical to the same workload on an
    /// attacker-free fleet — the blast-radius claim under campaign load.
    pub bystander_bit_identical: bool,
}

/// The schedule-independent face of one record: job id, typed outcome,
/// outputs, violation count, cycles, instret, retried.
type RecordSurface = (u64, String, Vec<u32>, usize, u64, u64, bool);

/// Per-record surface compared between the campaign fleet and the
/// attacker-free control fleet (schedule-visible fields excluded).
fn record_surface(r: &JobRecord) -> RecordSurface {
    (
        r.job.0,
        format!("{:?}", r.outcome),
        r.out_words.clone(),
        r.violations.len(),
        r.stats.exec.cycles,
        r.stats.exec.instret,
        r.retried,
    )
}

fn campaign_fleet(policy: QuarantinePolicy, threads: usize) -> AsyncFleet {
    AsyncFleet::new(AsyncConfig {
        threads,
        workers: 4,
        mode: SchedMode::FuelSliced { slice: 150 },
        quarantine: policy,
        ..Default::default()
    })
}

/// Registers the honest tenants and schedules their jobs; returns the
/// number of honest submissions. Submitted before any probe so honest
/// job ids are identical with and without the attacker.
fn seed_honest(fleet: &mut AsyncFleet, honest_tenants: u32, seed: u64) -> u64 {
    let mut rng = seed;
    let mut submitted = 0;
    for t in 0..honest_tenants {
        let id = TenantId(1_000 + t);
        fleet
            .register_tenant(id, KeySet::from_seed(0x600D ^ t as u64), ClassId(0))
            .expect("honest tenant registers");
        for _ in 0..2 {
            let n = 30 + (lcg(&mut rng) % 60) as u32;
            let tick = lcg(&mut rng) % 48;
            fleet.submit_at(JobSpec::new(id, honest_src(n), CAMPAIGN_FUEL), tick);
            submitted += 1;
        }
    }
    submitted
}

/// One forged-edge probe: the attacker's job with a bit flipped in the
/// sealed image it will run — to the device, a random forgery on the
/// fetched block.
fn probe_spec(attacker: TenantId, rng: &mut u64) -> JobSpec {
    let word = 2 + (lcg(rng) % 16) as usize;
    let mask = 1u32 << (lcg(rng) % 32);
    JobSpec::new(attacker, victims::control_loop_victim(4), CAMPAIGN_FUEL)
        .with_sabotage(Sabotage::FlipRomWord { word, mask })
}

/// Drives one multi-tenant probing campaign: one attacker tenant spraying
/// forged edges (serially — one probe in flight at a time, so every
/// quarantine's lockout is actually paid) while `honest_tenants` serve.
///
/// The attacker follows the policy's cheapest path back into service:
/// waits [`RELEASE_LATENCY_TICKS`] for an operator release when
/// suspended, re-registers a fresh identity when evicted.
pub fn probe_campaign(config: &ProbeCampaignConfig) -> ProbeCampaignReport {
    // Control run: the honest workload alone, for the bit-identity pin.
    let mut control = campaign_fleet(config.policy, config.threads);
    let honest_submitted = seed_honest(&mut control, config.honest_tenants, config.seed);
    control.run_until_idle();
    let mut control_records = control.drain_finished();
    control_records.sort_by_key(|r| r.job.0);
    let control_surface: Vec<_> = control_records.iter().map(record_surface).collect();

    let mut fleet = campaign_fleet(config.policy, config.threads);
    seed_honest(&mut fleet, config.honest_tenants, config.seed);

    let attacker_base = 9_000u32;
    let attacker_keys = |identity: u32| KeySet::from_seed(0xA77 ^ identity as u64);
    let mut identity = 0u32;
    let mut attacker = TenantId(attacker_base);
    fleet
        .register_tenant(attacker, attacker_keys(identity), ClassId(0))
        .expect("attacker registers");
    let is_attacker = |t: TenantId| t.0 >= attacker_base;

    let mut report = ProbeCampaignReport {
        policy: config.policy,
        probes_submitted: 0,
        probes_admitted: 0,
        probes_refused: 0,
        detections: 0,
        successes: 0,
        oracle_queries: 0,
        attacker_cycles: 0,
        releases: 0,
        identities_burned: 0,
        wall_ticks: 0,
        honest_submitted,
        honest_finished: 0,
        honest_clean: 0,
        bystander_availability: 0.0,
        bystander_bit_identical: false,
    };

    let mut rng = config.seed ^ 0xA77ACC;
    let mut probe_in_flight = false;
    // Set when a typed refusal taught the attacker it is locked out;
    // cleared by the operator release or a fresh identity.
    let mut locked_out = false;
    let mut release_due: Option<u64> = None;
    let mut honest_surface: Vec<RecordSurface> = Vec::new();
    let account = |r: JobRecord,
                   report: &mut ProbeCampaignReport,
                   probe_in_flight: &mut bool,
                   honest_surface: &mut Vec<RecordSurface>| {
        if is_attacker(r.tenant) {
            *probe_in_flight = false;
            report.attacker_cycles += r.stats.exec.cycles;
            report.oracle_queries += r.violations.len() as u64;
            if r.outcome.is_violation() || !r.violations.is_empty() {
                report.detections += 1;
            } else {
                report.successes += 1;
            }
        } else {
            report.honest_finished += 1;
            if r.outcome.is_halted() && r.violations.is_empty() {
                report.honest_clean += 1;
            }
            honest_surface.push(record_surface(&r));
        }
    };

    // Budget guard: the campaign is deterministic, but cap the tick loop
    // far above any legitimate run so a harness bug cannot spin forever.
    let tick_cap = 10_000 + 200 * config.probes as u64;
    while report.probes_admitted < config.probes as u64 || probe_in_flight {
        let now = fleet.stats().ticks;
        assert!(now < tick_cap, "campaign failed to converge");

        // Operator model: lift the attacker's suspension once the
        // investigation latency has elapsed.
        if release_due.is_some_and(|due| now >= due) {
            release_due = None;
            if fleet.release(attacker) {
                report.releases += 1;
                locked_out = false;
            }
        }

        // Attacker acts: one probe in flight at a time, learning its
        // service state only from the typed admission errors.
        if !probe_in_flight && !locked_out && report.probes_admitted < config.probes as u64 {
            report.probes_submitted += 1;
            match fleet.submit(probe_spec(attacker, &mut rng)) {
                Ok(_) => {
                    report.probes_admitted += 1;
                    probe_in_flight = true;
                }
                Err(AdmitError::Quarantined(_)) => {
                    report.probes_refused += 1;
                    locked_out = true;
                    release_due = Some(now + RELEASE_LATENCY_TICKS);
                }
                Err(AdmitError::Evicted(_)) => {
                    // The identity is burnt for good: acquire a fresh
                    // one and keep probing.
                    report.probes_refused += 1;
                    report.identities_burned += 1;
                    identity += 1;
                    attacker = TenantId(attacker_base + identity);
                    fleet
                        .register_tenant(attacker, attacker_keys(identity), ClassId(0))
                        .expect("fresh identity registers");
                }
                Err(e) => panic!("unexpected admission refusal: {e}"),
            }
        }

        fleet.tick();
        for r in fleet.drain_finished() {
            account(r, &mut report, &mut probe_in_flight, &mut honest_surface);
        }
    }

    // The attacker is done; drain the honest tail (including arrivals
    // still scheduled past the last probe).
    fleet.run_until_idle();
    for r in fleet.drain_finished() {
        account(r, &mut report, &mut probe_in_flight, &mut honest_surface);
    }

    report.wall_ticks = fleet.stats().ticks;
    report.bystander_availability = if honest_submitted == 0 {
        1.0
    } else {
        report.honest_finished as f64 / honest_submitted as f64
    };
    honest_surface.sort_by_key(|s| s.0);
    report.bystander_bit_identical = honest_surface == control_surface;
    report
}

// ---------------------------------------------------------------------
// Forgery-success scaling vs policy
// ---------------------------------------------------------------------

/// What one probe costs the fleet — and grants the attacker — under a
/// policy, measured by running a single tampered probe through a
/// one-worker fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleProfile {
    /// Policy the profile was measured under.
    pub policy: QuarantinePolicy,
    /// MAC-verification queries one admitted probe yields the attacker
    /// (violations logged on the probe's record). 1 under `Suspend` and
    /// `Evict`; `2 + max_resets` under `RetryWithReboot`, whose reboot
    /// budget re-verifies the same tampered image.
    pub queries_per_probe: u64,
    /// Ticks one probe occupies the fleet.
    pub ticks_per_probe: u64,
    /// Cycles one probe burns.
    pub cycles_per_probe: u64,
}

/// Measures the per-probe oracle profile for `policy` empirically.
pub fn oracle_profile(policy: QuarantinePolicy) -> OracleProfile {
    let mut fleet = AsyncFleet::new(AsyncConfig {
        threads: 1,
        workers: 1,
        mode: SchedMode::FuelSliced { slice: 150 },
        quarantine: policy,
        ..Default::default()
    });
    let attacker = TenantId(9_000);
    fleet
        .register_tenant(attacker, KeySet::from_seed(0xA77), ClassId(0))
        .expect("attacker registers");
    let mut rng = 0xA77ACCu64;
    fleet
        .submit(probe_spec(attacker, &mut rng))
        .expect("probe admitted");
    fleet.run_until_idle();
    let records = fleet.drain_finished();
    let r = records.first().expect("probe record");
    assert!(!r.violations.is_empty(), "profile probe went undetected");
    OracleProfile {
        policy,
        queries_per_probe: r.violations.len() as u64,
        ticks_per_probe: fleet.stats().ticks,
        cycles_per_probe: r.stats.exec.cycles,
    }
}

/// One truncated-MAC Monte-Carlo campaign, re-priced for a policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyForgeryRow {
    /// The underlying Monte-Carlo campaign. Under `Evict`,
    /// `campaign.completed < campaign.trials` when the identity budget
    /// ran out mid-sweep.
    pub campaign: ForgeryCampaign,
    /// The §IV-A work estimate for a full forgery at this MAC length
    /// under this policy.
    pub work: ExpectedWork,
}

/// Expected attacker work per compromised tenant — §IV-A's `2^{n-1}`
/// expected verification queries, converted to fleet units by a
/// policy's [`OracleProfile`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpectedWork {
    /// Expected MAC-verification queries to the first accepted forgery
    /// (`2^{n-1}`, the paper's convention).
    pub oracle_queries: f64,
    /// Expected probe submissions: queries divided by the policy's
    /// per-probe query yield (`RetryWithReboot` needs fewer submissions
    /// for the same queries — the defender-conservative reading of its
    /// amplification).
    pub probes: f64,
    /// Expected tenant identities consumed (`Evict`: one per probe;
    /// otherwise one total).
    pub identities: f64,
    /// Expected wall ticks: per-probe service plus the per-detection
    /// lockout (release latency, or identity acquisition under `Evict`).
    pub wall_ticks: f64,
}

/// Closed-form expected work to forge at `mac_bits` under the policy's
/// measured profile.
pub fn expected_work(profile: &OracleProfile, mac_bits: u32) -> ExpectedWork {
    let queries = (2.0f64).powi(mac_bits as i32 - 1);
    let probes = queries / profile.queries_per_probe as f64;
    let (identities, lockout) = match profile.policy {
        QuarantinePolicy::Evict => (probes, IDENTITY_COST_TICKS as f64),
        QuarantinePolicy::Suspend | QuarantinePolicy::RetryWithReboot { .. } => {
            (1.0, RELEASE_LATENCY_TICKS as f64)
        }
    };
    ExpectedWork {
        oracle_queries: queries,
        probes,
        identities,
        wall_ticks: probes * (profile.ticks_per_probe as f64 + lockout),
    }
}

/// Sweeps MAC lengths under one policy: the Monte-Carlo acceptance
/// measurement (online-budget-capped where the policy caps it) plus the
/// closed-form work estimate per length.
pub fn forgery_scaling(
    policy: QuarantinePolicy,
    keys: &KeySet,
    bits: &[u32],
    trials: u64,
    seed: u64,
) -> Vec<PolicyForgeryRow> {
    let profile = oracle_profile(policy);
    // The online oracle budget the policy leaves the attacker: Suspend
    // and RetryWithReboot lock the attacker out but never spend a finite
    // resource — releases are unbounded, so the sweep completes. Evict
    // burns an identity per detection; at truncated MAC lengths almost
    // every probe is detected, so the sweep dies with the identity
    // budget.
    let budget = match policy {
        QuarantinePolicy::Evict => EVICT_IDENTITY_BUDGET * profile.queries_per_probe,
        _ => u64::MAX,
    };
    bits.iter()
        .map(|&b| PolicyForgeryRow {
            campaign: run_campaign_capped(keys, b, trials, seed ^ b as u64, budget),
            work: expected_work(&profile, b),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Snapshot-in-transit tampering over the migration path
// ---------------------------------------------------------------------

/// How the serialized checkpoint is rewritten in transit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TamperVariant {
    /// Honest control: the checkpoint travels untouched.
    None,
    /// A flipped byte without fixing the container checksum — transit
    /// corruption, caught by the `SOFJ1` decode.
    BitFlipInTransit,
    /// The resume source rewritten to a neighbouring word, checksum
    /// recomputed (the adversary, not line noise). On no sealed edge:
    /// caught by MAC verification on the first resumed fetch.
    ForgePrevPc,
    /// The resume target redirected outside the image, checksum
    /// recomputed. Caught by the fetch bounds check.
    RedirectOutOfImage,
}

impl TamperVariant {
    /// Stable label for table rows and JSON.
    pub fn label(self) -> &'static str {
        match self {
            TamperVariant::None => "honest",
            TamperVariant::BitFlipInTransit => "bit_flip_in_transit",
            TamperVariant::ForgePrevPc => "forge_prev_pc",
            TamperVariant::RedirectOutOfImage => "redirect_out_of_image",
        }
    }
}

/// Where (whether) the migration pipeline caught the tamper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TamperOutcome {
    /// The `SOFJ1` decode refused the bytes (checksum/parse).
    DetectedInTransit,
    /// `adopt_job` refused the checkpoint (restore-time verification).
    RefusedAtAdopt,
    /// The resumed run raised a violation on its first fetches.
    DetectedOnResume,
    /// The job completed with the victim's expected output and no
    /// violations — the honest-control outcome.
    CompletedClean,
    /// The job completed with attacker-perturbed output and no
    /// detection. Must never appear; the sweep asserts its absence.
    CompromisedSilently,
}

impl TamperOutcome {
    /// Stable label for table rows and JSON.
    pub fn label(self) -> &'static str {
        match self {
            TamperOutcome::DetectedInTransit => "detected_in_transit",
            TamperOutcome::RefusedAtAdopt => "refused_at_adopt",
            TamperOutcome::DetectedOnResume => "detected_on_resume",
            TamperOutcome::CompletedClean => "completed_clean",
            TamperOutcome::CompromisedSilently => "compromised_silently",
        }
    }
}

/// One tamper variant's trip through the migration path.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrationTamperRow {
    /// What was done to the checkpoint.
    pub variant: TamperVariant,
    /// Where the pipeline caught it (or didn't).
    pub outcome: TamperOutcome,
    /// Violations logged by the adopting fleet's run of the job.
    pub violations: u64,
    /// Whether the adopting fleet's quarantine spent a reboot-retry on
    /// the job (`RetryWithReboot` re-runs the tampered-resume job from
    /// scratch — and a fresh start is clean, so the retry completes).
    pub retried: bool,
    /// The tenant's state in the adopting fleet after the sweep — the
    /// policy's verdict on a migration-tampered tenant.
    pub tenant_after: TenantState,
}

/// The migration-tamper sweep under one policy.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrationSweepReport {
    /// Policy of the adopting fleet.
    pub policy: QuarantinePolicy,
    /// One row per [`TamperVariant`], honest control first.
    pub rows: Vec<MigrationTamperRow>,
}

/// Suspends the two-phase victim mid-flight in a source fleet and
/// returns its checkpoint bytes — the artifact that travels.
fn checkpoint_in_transit(policy: QuarantinePolicy, keys: &KeySet, tenant: TenantId) -> Vec<u8> {
    let mut source = Fleet::new(FleetConfig {
        workers: 1,
        mode: SchedMode::FuelSliced { slice: 60 },
        quarantine: policy,
        ..Default::default()
    });
    source
        .register_tenant(tenant, keys.clone())
        .expect("tenant registers in source fleet");
    let id = source
        .submit(JobSpec::new(
            tenant,
            victims::two_phase_victim(),
            CAMPAIGN_FUEL,
        ))
        .expect("victim submits");
    let finished = source.run_batch_capped(1);
    assert!(finished.is_empty(), "victim finished before suspension");
    source
        .checkpoint_job(id)
        .expect("suspended job checkpoints")
        .to_bytes()
}

/// Runs one tamper variant through checkpoint → transit → adopt → resume
/// and classifies the trip.
fn migrate_tampered(
    policy: QuarantinePolicy,
    variant: TamperVariant,
    seed: u64,
) -> MigrationTamperRow {
    let keys = KeySet::from_seed(seed);
    let tenant = TenantId(7);
    let bytes = checkpoint_in_transit(policy, &keys, tenant);

    let row = |outcome, violations, retried, tenant_after| MigrationTamperRow {
        variant,
        outcome,
        violations,
        retried,
        tenant_after,
    };

    // In transit: the attacker rewrites the container.
    let tampered = match variant {
        TamperVariant::None => bytes,
        TamperVariant::BitFlipInTransit => {
            let mut b = bytes;
            let mid = b.len() / 2;
            b[mid] ^= 0x20;
            b
        }
        TamperVariant::ForgePrevPc | TamperVariant::RedirectOutOfImage => {
            // The adversary decodes, rewrites the resume edge, and
            // re-encodes — recomputing the container checksum, which
            // detects corruption, not adversaries.
            let mut ckpt = JobCheckpoint::from_bytes(&bytes).expect("attacker decodes");
            let snap = ckpt.machine.as_mut().expect("suspended machine travels");
            match variant {
                TamperVariant::ForgePrevPc => snap.prev_pc ^= 4,
                _ => snap.next_target = 0xDEAD_BEEC,
            }
            ckpt.to_bytes()
        }
    };

    let ckpt = match JobCheckpoint::from_bytes(&tampered) {
        Ok(c) => c,
        Err(_) => {
            return row(
                TamperOutcome::DetectedInTransit,
                0,
                false,
                TenantState::Active,
            );
        }
    };

    // The adopting fleet, running the policy under test.
    let mut adopter = Fleet::new(FleetConfig {
        workers: 1,
        mode: SchedMode::FuelSliced { slice: 60 },
        quarantine: policy,
        ..Default::default()
    });
    adopter
        .register_tenant(tenant, keys)
        .expect("tenant registers in adopting fleet");
    if adopter.adopt_job(ckpt).is_err() {
        return row(TamperOutcome::RefusedAtAdopt, 0, false, TenantState::Active);
    }
    let records = adopter.run_batch();
    let r = records.first().expect("adopted job record");
    let tenant_after = adopter
        .tenant_state(tenant)
        .expect("tenant state after the run");
    let outcome = if r.outcome.is_violation() || !r.violations.is_empty() {
        TamperOutcome::DetectedOnResume
    } else if r.outcome.is_halted() && r.out_words == victims::two_phase_expected() {
        TamperOutcome::CompletedClean
    } else {
        TamperOutcome::CompromisedSilently
    };
    row(outcome, r.violations.len() as u64, r.retried, tenant_after)
}

/// Sweeps every [`TamperVariant`] through the migration path under one
/// policy. Panics if any tamper lands [`TamperOutcome::CompromisedSilently`]
/// — the architecture's claim is that the snapshot adds no silent
/// forgery surface, and the sweep is its executable pin.
pub fn migration_sweep(policy: QuarantinePolicy, seed: u64) -> MigrationSweepReport {
    let rows: Vec<MigrationTamperRow> = [
        TamperVariant::None,
        TamperVariant::BitFlipInTransit,
        TamperVariant::ForgePrevPc,
        TamperVariant::RedirectOutOfImage,
    ]
    .into_iter()
    .map(|variant| migrate_tampered(policy, variant, 0x4D17 ^ seed))
    .collect();
    for r in &rows {
        assert_ne!(
            r.outcome,
            TamperOutcome::CompromisedSilently,
            "{} compromised silently under {:?}",
            r.variant.label(),
            policy
        );
    }
    MigrationSweepReport { policy, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_campaign_detects_everything_and_spares_bystanders() {
        let config = ProbeCampaignConfig {
            policy: QuarantinePolicy::Suspend,
            honest_tenants: 4,
            probes: 3,
            threads: 2,
            seed: 0xCA4,
        };
        let r = probe_campaign(&config);
        assert_eq!(r.probes_admitted, 3);
        assert_eq!(r.probes_submitted, r.probes_admitted + r.probes_refused);
        assert!(r.probes_refused >= 1, "no typed refusal was ever issued");
        assert_eq!(r.successes, 0, "64-bit MAC forgery landed");
        assert_eq!(r.detections, r.probes_admitted);
        assert!(r.releases >= 1, "suspensions were never released");
        assert_eq!(r.identities_burned, 0);
        assert_eq!(r.honest_finished, r.honest_submitted);
        assert_eq!(r.honest_clean, r.honest_finished);
        assert_eq!(r.bystander_availability, 1.0);
        assert!(r.bystander_bit_identical, "attacker perturbed a bystander");
    }

    #[test]
    fn probe_campaign_is_thread_count_invariant() {
        for policy in POLICIES {
            let config = ProbeCampaignConfig {
                policy,
                honest_tenants: 3,
                probes: 2,
                threads: 1,
                seed: 0xCA5,
            };
            let serial = probe_campaign(&config);
            let threaded = probe_campaign(&ProbeCampaignConfig {
                threads: 4,
                ..config
            });
            assert_eq!(serial, threaded, "{policy:?}");
        }
    }

    #[test]
    fn evict_burns_attacker_identities() {
        let r = probe_campaign(&ProbeCampaignConfig {
            policy: QuarantinePolicy::Evict,
            honest_tenants: 2,
            probes: 3,
            threads: 2,
            seed: 0xCA6,
        });
        assert_eq!(r.detections, r.probes_admitted);
        assert_eq!(r.releases, 0, "evicted identities cannot be released");
        assert!(r.identities_burned >= 2, "{}", r.identities_burned);
    }

    #[test]
    fn retry_policy_amplifies_oracle_queries() {
        let suspend = oracle_profile(QuarantinePolicy::Suspend);
        let retry = oracle_profile(QuarantinePolicy::RetryWithReboot { max_resets: 3 });
        assert_eq!(suspend.queries_per_probe, 1);
        assert!(
            retry.queries_per_probe > suspend.queries_per_probe,
            "reboot budget grants no extra verifications: {retry:?}"
        );
        let ws = expected_work(&suspend, 16);
        let wr = expected_work(&retry, 16);
        assert_eq!(ws.oracle_queries, wr.oracle_queries);
        assert!(wr.probes < ws.probes);
    }

    #[test]
    fn evict_cuts_the_scaling_sweep_short() {
        let keys = KeySet::from_seed(0x5EC7);
        let trials = EVICT_IDENTITY_BUDGET * 4;
        let rows = forgery_scaling(QuarantinePolicy::Evict, &keys, &[8], trials, 9);
        let c = rows[0].campaign;
        assert_eq!(c.trials, trials);
        assert!(c.completed < c.trials, "identity budget never ran out");
        assert!(c.measured_rate().is_finite());
        let unlimited = forgery_scaling(QuarantinePolicy::Suspend, &keys, &[8], trials, 9);
        assert_eq!(unlimited[0].campaign.completed, trials);
    }

    #[test]
    fn migration_sweep_catches_every_tamper() {
        for policy in POLICIES {
            let report = migration_sweep(policy, 0);
            assert_eq!(report.rows[0].outcome, TamperOutcome::CompletedClean);
            assert_eq!(report.rows[1].outcome, TamperOutcome::DetectedInTransit);
            for row in &report.rows[2..] {
                assert_eq!(
                    row.outcome,
                    TamperOutcome::DetectedOnResume,
                    "{} under {policy:?}",
                    row.variant.label()
                );
            }
        }
    }

    #[test]
    fn migration_policy_decides_the_tenants_fate() {
        let suspend = migration_sweep(QuarantinePolicy::Suspend, 0);
        assert_eq!(suspend.rows[2].tenant_after, TenantState::Suspended);
        let evict = migration_sweep(QuarantinePolicy::Evict, 0);
        assert_eq!(evict.rows[2].tenant_after, TenantState::Evicted);
        // RetryWithReboot re-runs the tampered-resume job from a fresh
        // machine — the tamper was in the snapshot, not the image, so
        // the retry completes and the tenant keeps serving: detection
        // logged, service continuity kept.
        let retry = migration_sweep(QuarantinePolicy::RetryWithReboot { max_resets: 3 }, 0);
        assert_eq!(retry.rows[2].outcome, TamperOutcome::DetectedOnResume);
        assert!(retry.rows[2].retried);
        assert_eq!(retry.rows[2].tenant_after, TenantState::Active);
    }
}
