//! Victim programs for the attack experiments.
//!
//! Each victim models a realistic safety-critical firmware shape: a
//! control loop that reads sensor data, computes, and writes an actuator
//! (the paper's motivating example: "a store instruction that disables
//! the brakes on a car"). Each also contains a *dangerous gadget* — code
//! that writes the attacker's value to the actuator — which is never
//! reached on any legitimate path.

/// MMIO actuator port (see `sofia_cpu::mem::MMIO_ACTUATOR`).
pub const ACTUATOR: u32 = 0xFFFF_0010;

/// The value the legitimate control loop writes to the actuator.
pub const SAFE_VALUE: u32 = 0x5AFE;

/// The value the dangerous gadget writes when an attack succeeds.
pub const EVIL_VALUE: u32 = 0x0BAD;

/// A victim with an attacker-influenced indirect transfer: the "return
/// address" of `process` is loaded from a data slot (`target_slot`)
/// standing in for a stack slot an overflow can reach. Legitimate runs
/// find the correct continuation there; the hijack experiment poisons it
/// with the gadget address.
///
/// Emits `SAFE_VALUE` to the actuator and `0x600D` to the word port on a
/// clean run.
pub fn rop_victim() -> String {
    format!(
        r#"
.equ OUT, 0xFFFF0000
.equ ACTUATOR, {ACTUATOR:#x}

.text
.global main
main:
    # Publish the legitimate continuation address, as a compiler spilling
    # a return address to the stack would.
    la   t0, cont
    la   t1, target_slot
    sw   t0, 0(t1)
    jal  process
cont_landing:
    halt

# process: does "work", then returns via the spilled continuation —
# the attacker-reachable indirect transfer.
process:
    li   t2, {SAFE_VALUE:#x}
    li   t3, ACTUATOR
    sw   t2, 0(t3)
    la   t1, target_slot
    lw   t4, 0(t1)
    # `gadget` is deliberately NOT declared: it is on no legitimate path.
    .indirect cont
    jr   t4

cont:
    li   t5, OUT
    li   t6, 0x600D
    sw   t6, 0(t5)
    b    cont_landing

# The dangerous gadget: present in the binary, never called legitimately.
gadget:
    li   t2, {EVIL_VALUE:#x}
    li   t3, ACTUATOR
    sw   t2, 0(t3)
    halt

.data
target_slot: .space 4
"#
    )
}

/// The clean word-port output of [`rop_victim`].
pub fn rop_victim_expected() -> Vec<u32> {
    vec![0x600D]
}

/// A simple sensor→actuator control loop used as the injection and
/// relocation target: reads `n` sensor words, accumulates, writes the
/// safe value per iteration, emits the accumulator.
pub fn control_loop_victim(n: u32) -> String {
    format!(
        r#"
.equ OUT, 0xFFFF0000
.equ ACTUATOR, {ACTUATOR:#x}

.text
.global main
main:
    la   s0, sensor
    li   s1, {n}
    li   s2, 0
loop:
    beqz s1, done
    lw   t0, 0(s0)
    add  s2, s2, t0
    li   t1, {SAFE_VALUE:#x}
    li   t2, ACTUATOR
    sw   t1, 0(t2)
    addi s0, s0, 4
    subi s1, s1, 1
    b    loop
done:
    li   t3, OUT
    sw   s2, 0(t3)
    halt

.data
sensor:
    .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
"#
    )
}

/// Accumulator emitted by a clean run of [`control_loop_victim`] over the
/// first `n ≤ 16` sensor words.
pub fn control_loop_expected(n: u32) -> Vec<u32> {
    let sensor = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    vec![sensor[..n as usize].iter().sum()]
}

/// A two-phase victim for migration attacks: two long loops separated
/// by a straight-line spacer block, so a fuel-sliced run parks on
/// *different* control-flow edges in different phases — the raw
/// material for stale-[`sofia_core::ResumeEdge`] replay experiments
/// (the spacer guarantees the phase-1 loop block is never the direct
/// sequential predecessor of the phase-2 loop block, so a spliced
/// `(prevPC₁, target₂)` pair is on no sealed edge).
pub fn two_phase_victim() -> String {
    r#"
.equ OUT, 0xFFFF0000

.text
.global main
main:
    li   s0, 0
    li   t0, 60
phase1:
    addi s0, s0, 1
    subi t0, t0, 1
    bnez t0, phase1
    addi s1, zero, 1
    addi s1, s1, 1
    addi s1, s1, 1
    addi s1, s1, 1
    addi s1, s1, 1
    addi s1, s1, 1
    addi s1, s1, 1
    li   t0, 60
phase2:
    addi s0, s0, 2
    subi t0, t0, 1
    bnez t0, phase2
    li   t1, OUT
    sw   s0, 0(t1)
    halt
"#
    .to_string()
}

/// Word emitted by a clean run of [`two_phase_victim`].
pub fn two_phase_expected() -> Vec<u32> {
    vec![60 + 120]
}
