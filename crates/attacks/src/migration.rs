//! Migration-surface attacks: tampering with the resume point of a
//! restored snapshot.
//!
//! A serialised job snapshot travels outside the device, so the threat
//! model must assume an attacker can rewrite it in transit (the
//! container checksum detects corruption, not adversaries — an attacker
//! recomputes it). The architecture's answer is the same one it gives
//! for images at rest: the snapshot carries no code, only a
//! [`sofia_core::ResumeEdge`] naming where in the MAC-protected image
//! to continue — and a forged or stale edge is, to the hardware, just
//! another transfer on no sealed CFG edge. These experiments pin that
//! claim: every spliced resume point is caught by edge verification on
//! the **first resumed fetch**, with the verified-block cache on or
//! off, so snapshots add no new forgery surface.

use sofia_core::machine::{RunOutcome, SofiaMachine};
use sofia_core::snapshot::MachineSnapshot;
use sofia_core::{SliceOutcome, SofiaConfig};
use sofia_crypto::KeySet;
use sofia_isa::asm;
use sofia_transform::{SecureImage, Transformer};

use crate::victims::{two_phase_expected, two_phase_victim};
use crate::{Verdict, FUEL};

/// Seals the two-phase victim and drives it `slices` fuel slices of
/// `slice` slots each, returning the suspended machine's snapshot.
///
/// # Panics
///
/// Panics if the victim finishes before suspending `slices` times — an
/// experiment-setup bug, not an attack outcome.
fn suspend_after(
    keys: &KeySet,
    config: &SofiaConfig,
    slices: u32,
    slice: u64,
) -> (SecureImage, MachineSnapshot) {
    let image = Transformer::new(keys.clone())
        .transform(&asm::parse(&two_phase_victim()).expect("victim parses"))
        .expect("victim transforms");
    let mut m = SofiaMachine::with_config(&image, keys, config);
    let mut spent = 0;
    for _ in 0..slices {
        let s = m.run_slice(slice).expect("victim runs");
        spent += s.consumed;
        assert_eq!(
            s.outcome,
            SliceOutcome::Preempted,
            "victim finished before suspension point"
        );
    }
    let snap = m.snapshot(FUEL - spent);
    (image, snap)
}

/// Restores `snap` over `image` and classifies what the resumed run
/// achieves.
fn classify_resume(image: &SecureImage, keys: &KeySet, snap: &MachineSnapshot) -> Verdict {
    let mut m = match SofiaMachine::restore(image, keys, snap) {
        Ok(m) => m,
        // Restore itself refusing the snapshot is detection too (a
        // tampered warm cache line, say) — but these experiments forge
        // only the resume point, which restore cannot judge; it is the
        // first fetch that must.
        Err(e) => {
            return Verdict::Neutralized {
                detail: format!("restore refused: {e}"),
            }
        }
    };
    match m.run(snap.fuel_remaining) {
        Ok(RunOutcome::ViolationStop(v)) => Verdict::Detected { violation: v },
        Ok(o) if o.is_halted() => {
            if m.mem().mmio.out_words == two_phase_expected() {
                Verdict::Neutralized {
                    detail: "resumed run unperturbed".into(),
                }
            } else {
                Verdict::Compromised {
                    detail: format!(
                        "forged resume ran to completion with output {:?}",
                        m.mem().mmio.out_words
                    ),
                }
            }
        }
        Ok(o) => Verdict::Neutralized {
            detail: format!("resumed run ended {o:?}"),
        },
        Err(trap) => Verdict::Crashed { trap },
    }
}

/// **Forged `prevPC`**: the attacker rewrites the snapshot's resume
/// source to a neighbouring word, leaving the target intact. The pair
/// is on no sealed edge, so the control-flow-bound counter decrypts the
/// target block to noise and the SI unit resets the core on the first
/// resumed fetch.
pub fn forge_resume_prev_pc(keys: &KeySet) -> Verdict {
    forge_resume_prev_pc_with(keys, &SofiaConfig::default())
}

/// [`forge_resume_prev_pc`] under an arbitrary machine configuration
/// (the verified-block cache must change nothing: a forged edge is a
/// different cache key, so it can never hit a verified line).
pub fn forge_resume_prev_pc_with(keys: &KeySet, config: &SofiaConfig) -> Verdict {
    let (image, mut snap) = suspend_after(keys, config, 1, 60);
    snap.prev_pc ^= 4;
    classify_resume(&image, keys, &snap)
}

/// **Stale-edge replay**: the attacker splices the resume source from
/// an *earlier* slice boundary (parked in phase 1 of the victim) into
/// the current snapshot (parked in phase 2) — the migration analogue of
/// replaying an old CFI context after an interrupt. The spliced pair
/// `(prevPC₁, target₂)` crosses the two phases and is on no sealed
/// edge, so the first resumed fetch fails MAC verification.
pub fn replay_stale_resume_edge(keys: &KeySet) -> Verdict {
    replay_stale_resume_edge_with(keys, &SofiaConfig::default())
}

/// [`replay_stale_resume_edge`] under an arbitrary machine
/// configuration.
pub fn replay_stale_resume_edge_with(keys: &KeySet, config: &SofiaConfig) -> Verdict {
    // One 60-slot slice parks in phase 1 of the victim…
    let (image, stale) = suspend_after(keys, config, 1, 60);
    // …then a fresh run is driven until it parks at least two blocks
    // later (the phase-2 loop, past the spacer), so the spliced pair
    // crosses a region with no sealed edge between its halves.
    let min_prev = stale.prev_pc + 2 * image.format.block_bytes();
    let mut m = SofiaMachine::with_config(&image, keys, config);
    let mut spent = 0;
    let mut snap = loop {
        let s = m.run_slice(60).expect("victim runs");
        spent += s.consumed;
        assert_eq!(
            s.outcome,
            SliceOutcome::Preempted,
            "victim finished before parking past the spacer"
        );
        if m.edge().prev_pc >= min_prev {
            break m.snapshot(FUEL - spent);
        }
    };
    snap.prev_pc = stale.prev_pc;
    classify_resume(&image, keys, &snap)
}

/// **Redirected resume**: the attacker points the snapshot's transfer
/// target outside the secure image entirely — caught by the fetch
/// bounds check before any word is read.
pub fn redirect_resume_out_of_image(keys: &KeySet) -> Verdict {
    redirect_resume_out_of_image_with(keys, &SofiaConfig::default())
}

/// [`redirect_resume_out_of_image`] under an arbitrary machine
/// configuration.
pub fn redirect_resume_out_of_image_with(keys: &KeySet, config: &SofiaConfig) -> Verdict {
    let (image, mut snap) = suspend_after(keys, config, 1, 60);
    snap.next_target = 0xDEAD_BEEC;
    classify_resume(&image, keys, &snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_core::Violation;

    #[test]
    fn honest_snapshot_resumes_clean() {
        let keys = KeySet::from_seed(0x4D16);
        let (image, snap) = suspend_after(&keys, &SofiaConfig::default(), 3, 60);
        let v = classify_resume(&image, &keys, &snap);
        assert!(
            matches!(v, Verdict::Neutralized { ref detail } if detail.contains("unperturbed")),
            "{v}"
        );
    }

    #[test]
    fn forged_prev_pc_is_a_mac_mismatch() {
        let keys = KeySet::from_seed(0x516);
        let v = forge_resume_prev_pc(&keys);
        assert!(
            matches!(
                v,
                Verdict::Detected {
                    violation: Violation::MacMismatch { .. }
                }
            ),
            "{v}"
        );
    }
}
