//! Control-flow hijack (code-reuse) attacks.
//!
//! Two channels:
//!
//! * **data poisoning** — the victim loads an attacker-controlled word
//!   and transfers through it (the software shape of a smashed return
//!   address). On the vanilla core the dangerous gadget runs; on SOFIA
//!   the dispatch ladder (the lowered form of the declared indirect
//!   transfer) refuses the undeclared target.
//! * **PC fault injection** — the attacker forces the fetch target
//!   directly, bypassing software entirely. SOFIA's decryption counter
//!   then mismatches every sealed edge of the victim block and the MAC
//!   check fires: the paper's fine-grained CFI at work.

use sofia_core::machine::SofiaMachine;
use sofia_core::SofiaConfig;
use sofia_cpu::machine::VanillaMachine;
use sofia_crypto::KeySet;
use sofia_isa::asm;
use sofia_transform::Transformer;

use crate::injection::classify_sofia_run;
use crate::victims::{rop_victim, EVIL_VALUE};
use crate::{Verdict, FUEL};

/// Poisons the victim's spilled continuation slot with the gadget
/// address on the **unprotected** machine: the gadget runs.
pub fn poison_vanilla() -> Verdict {
    let program = asm::assemble(&rop_victim()).expect("victim assembles");
    let gadget = program.symbols["gadget"];
    let slot = program.symbols["target_slot"];
    let mut m = VanillaMachine::new(&program);
    // Run until the program has published the legitimate continuation,
    // then overwrite it — the moral equivalent of the buffer overflow.
    // (The slot is written early; a few steps suffice.)
    for _ in 0..6 {
        m.step().expect("prologue executes");
    }
    m.mem_mut()
        .store(slot, sofia_cpu::mem::Width::Word, gadget)
        .expect("slot is writable data");
    match m.run(FUEL) {
        Ok(r) if r.is_halted() => {
            if m.mem().mmio.actuator_writes.contains(&EVIL_VALUE) {
                Verdict::Compromised {
                    detail: "gadget wrote the actuator".into(),
                }
            } else {
                Verdict::Neutralized {
                    detail: "gadget did not run".into(),
                }
            }
        }
        Ok(_) => Verdict::Neutralized {
            detail: "did not halt".into(),
        },
        Err(t) => Verdict::Crashed { trap: t },
    }
}

/// The same poisoning against SOFIA: the declared-target dispatch refuses
/// the gadget (it is on no CFG edge), so the malicious write never
/// happens.
pub fn poison_sofia(keys: &KeySet) -> Verdict {
    poison_sofia_with(keys, &SofiaConfig::default())
}

/// [`poison_sofia`] under an arbitrary machine configuration.
pub fn poison_sofia_with(keys: &KeySet, config: &SofiaConfig) -> Verdict {
    let module = asm::parse(&rop_victim()).expect("victim parses");
    let image = Transformer::new(keys.clone())
        .transform(&module)
        .expect("victim transforms");
    let gadget = image.symbols["gadget"];
    let slot = image.symbols["target_slot"];
    let mut m = SofiaMachine::with_config(&image, keys, config);
    // The entry block publishes the slot; poison right after it, before
    // `process` loads the continuation.
    let _ = m.step_block().expect("prologue executes");
    m.mem_mut()
        .store(slot, sofia_cpu::mem::Width::Word, gadget)
        .expect("slot is writable data");
    classify_sofia_run(m)
}

/// PC fault injection against SOFIA: force the next fetch into the middle
/// of the program along an edge that does not exist in the CFG.
pub fn fault_inject_sofia(keys: &KeySet, target_offset_blocks: usize) -> Verdict {
    fault_inject_sofia_with(keys, &SofiaConfig::default(), target_offset_blocks)
}

/// [`fault_inject_sofia`] under an arbitrary machine configuration.
pub fn fault_inject_sofia_with(
    keys: &KeySet,
    config: &SofiaConfig,
    target_offset_blocks: usize,
) -> Verdict {
    let module = asm::parse(&rop_victim()).expect("victim parses");
    let image = Transformer::new(keys.clone())
        .transform(&module)
        .expect("victim transforms");
    let mut m = SofiaMachine::with_config(&image, keys, config);
    let _ = m.step_block().expect("first block runs");
    let target = image.text_base + (target_offset_blocks as u32) * image.format.block_bytes();
    m.hijack_next_target(target);
    classify_sofia_run(m)
}

/// The same fault injection against the vanilla machine: execution simply
/// continues at the attacker's address.
pub fn fault_inject_vanilla() -> Verdict {
    let program = asm::assemble(&rop_victim()).expect("victim assembles");
    let gadget = program.symbols["gadget"];
    let mut m = VanillaMachine::new(&program);
    m.step().expect("first instruction runs");
    m.hijack_pc(gadget);
    match m.run(FUEL) {
        Ok(r) if r.is_halted() => {
            if m.mem().mmio.actuator_writes.contains(&EVIL_VALUE) {
                Verdict::Compromised {
                    detail: "fault-injected jump reached the gadget".into(),
                }
            } else {
                Verdict::Neutralized {
                    detail: "gadget did not run".into(),
                }
            }
        }
        Ok(_) => Verdict::Neutralized {
            detail: "did not halt".into(),
        },
        Err(t) => Verdict::Crashed { trap: t },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_victim_runs_on_both_machines() {
        let program = asm::assemble(&rop_victim()).unwrap();
        let mut vm = VanillaMachine::new(&program);
        assert!(vm.run(FUEL).unwrap().is_halted());
        assert_eq!(
            vm.mem().mmio.out_words,
            crate::victims::rop_victim_expected()
        );
        assert!(!vm.mem().mmio.actuator_writes.contains(&EVIL_VALUE));

        let keys = KeySet::from_seed(5);
        let module = asm::parse(&rop_victim()).unwrap();
        let image = Transformer::new(keys.clone()).transform(&module).unwrap();
        let mut sm = SofiaMachine::new(&image, &keys);
        assert!(sm.run(FUEL).unwrap().is_halted());
        assert_eq!(
            sm.mem().mmio.out_words,
            crate::victims::rop_victim_expected()
        );
    }

    #[test]
    fn vanilla_falls_to_poisoned_indirect() {
        let v = poison_vanilla();
        assert!(v.is_compromised(), "{v}");
    }

    #[test]
    fn sofia_neutralizes_poisoned_indirect() {
        let keys = KeySet::from_seed(6);
        let v = poison_sofia(&keys);
        assert!(!v.is_compromised(), "{v}");
    }

    #[test]
    fn vanilla_falls_to_pc_fault() {
        let v = fault_inject_vanilla();
        assert!(v.is_compromised(), "{v}");
    }

    #[test]
    fn sofia_detects_pc_faults_at_every_block() {
        let keys = KeySet::from_seed(7);
        for block in 1..6 {
            let v = fault_inject_sofia(&keys, block);
            assert!(v.is_detected() || !v.is_compromised(), "block {block}: {v}");
        }
    }
}
