//! Code-confidentiality ("software copyright protection") analysis.
//!
//! The paper claims that "even if an attacker obtains the code running on
//! a device, he should not be able to understand it and know, e.g., which
//! version of the software is being deployed". This module quantifies
//! that for a sealed image: byte entropy near 8 bits, disassembly of the
//! ciphertext decodes at roughly the random-word rate, and two versions
//! of the *same program* under different nonces share no ciphertext.

use std::collections::HashMap;

/// Summary statistics comparing a plaintext program with its sealed form.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfidentialityReport {
    /// Shannon entropy (bits/byte) of the plaintext text section.
    pub plain_entropy: f64,
    /// Shannon entropy (bits/byte) of the ciphertext text section.
    pub cipher_entropy: f64,
    /// Fraction of plaintext words that decode as legal instructions.
    pub plain_legal_fraction: f64,
    /// Fraction of ciphertext words that decode as legal instructions.
    pub cipher_legal_fraction: f64,
    /// Words identical between plaintext and ciphertext streams.
    pub matching_words: usize,
}

/// Shannon entropy in bits per byte.
pub fn byte_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<u8, u64> = HashMap::new();
    for &b in bytes {
        *counts.entry(b).or_default() += 1;
    }
    let n = bytes.len() as f64;
    -counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Compares a plaintext word stream with its sealed counterpart.
pub fn analyze(plain_words: &[u32], cipher_words: &[u32]) -> ConfidentialityReport {
    let to_bytes = |ws: &[u32]| -> Vec<u8> { ws.iter().flat_map(|w| w.to_le_bytes()).collect() };
    let matching = plain_words
        .iter()
        .zip(cipher_words)
        .filter(|(a, b)| a == b)
        .count();
    ConfidentialityReport {
        plain_entropy: byte_entropy(&to_bytes(plain_words)),
        cipher_entropy: byte_entropy(&to_bytes(cipher_words)),
        plain_legal_fraction: sofia_isa::disasm::legal_fraction(plain_words),
        cipher_legal_fraction: sofia_isa::disasm::legal_fraction(cipher_words),
        matching_words: matching,
    }
}

/// Fraction of ciphertext words shared between two sealed images
/// (version-distinguishability: should be ≈ 0 for distinct nonces).
pub fn shared_ciphertext_fraction(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let matches = a.iter().zip(b).filter(|(x, y)| x == y).count();
    matches as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_crypto::{KeySet, Nonce};
    use sofia_isa::asm;
    use sofia_transform::Transformer;

    fn victim() -> (Vec<u32>, Vec<u32>) {
        let src = crate::victims::control_loop_victim(16);
        let plain = asm::assemble(&src).unwrap().words;
        let module = asm::parse(&src).unwrap();
        let image = Transformer::new(KeySet::from_seed(0xC0))
            .transform(&module)
            .unwrap();
        (plain, image.ctext)
    }

    #[test]
    fn ciphertext_is_high_entropy_and_opaque() {
        let (plain, cipher) = victim();
        let r = analyze(&plain, &cipher);
        assert!(
            r.cipher_entropy > 5.5,
            "cipher entropy {}",
            r.cipher_entropy
        );
        assert!(
            r.cipher_entropy > r.plain_entropy,
            "cipher {} <= plain {}",
            r.cipher_entropy,
            r.plain_entropy
        );
        assert_eq!(r.plain_legal_fraction, 1.0);
        assert!(
            r.cipher_legal_fraction < 0.7,
            "ciphertext decodes too often: {}",
            r.cipher_legal_fraction
        );
        assert_eq!(r.matching_words, 0);
    }

    #[test]
    fn versions_share_no_ciphertext() {
        let src = crate::victims::control_loop_victim(16);
        let module = asm::parse(&src).unwrap();
        let keys = KeySet::from_seed(0xC1);
        let v1 = Transformer::new(keys.clone())
            .with_nonce(Nonce::new(1))
            .transform(&module)
            .unwrap();
        let v2 = Transformer::new(keys)
            .with_nonce(Nonce::new(2))
            .transform(&module)
            .unwrap();
        let shared = shared_ciphertext_fraction(&v1.ctext, &v2.ctext);
        assert!(shared < 0.02, "shared fraction {shared}");
    }

    #[test]
    fn entropy_helper_extremes() {
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(byte_entropy(&[7u8; 100]), 0.0);
        let uniform: Vec<u8> = (0..=255).collect();
        assert!((byte_entropy(&uniform) - 8.0).abs() < 1e-9);
    }
}
