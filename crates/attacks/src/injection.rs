//! Code-injection attacks: tampering with the stored program image.

use sofia_core::machine::{RunOutcome, SofiaMachine};
use sofia_core::SofiaConfig;
use sofia_cpu::machine::VanillaMachine;
use sofia_crypto::KeySet;
use sofia_isa::asm;
use sofia_isa::{Instruction, Reg};
use sofia_transform::{SecureImage, Transformer};

use crate::victims::{control_loop_victim, EVIL_VALUE, SAFE_VALUE};
use crate::{Verdict, FUEL};

/// Locates the word index of the `li t1, SAFE_VALUE` instruction (an
/// `addi`) in a flat instruction stream. The attacker is assumed to know
/// the program layout — standard for firmware attacks.
fn find_safe_imm(words: &[u32]) -> Option<usize> {
    words.iter().position(|&w| {
        Instruction::decode(w)
            == Ok(Instruction::Addi {
                rt: Reg::T1,
                rs: Reg::ZERO,
                imm: SAFE_VALUE as i16,
            })
    })
}

/// The bit-difference between the safe and evil immediates — XORing it
/// into the instruction word turns `li t1, SAFE` into `li t1, EVIL`.
fn evil_diff() -> u32 {
    SAFE_VALUE ^ EVIL_VALUE
}

/// Injects the evil immediate into the **unprotected** machine's ROM:
/// the vanilla core executes the tampered instruction without noticing.
pub fn inject_vanilla() -> Verdict {
    let program = asm::assemble(&control_loop_victim(8)).expect("victim assembles");
    let mut m = VanillaMachine::new(&program);
    let idx = find_safe_imm(m.mem().rom()).expect("victim contains the safe li");
    m.mem_mut().rom_mut()[idx] ^= evil_diff();
    match m.run(FUEL) {
        Ok(r) if r.is_halted() => {
            if m.mem().mmio.actuator_writes.contains(&EVIL_VALUE) {
                Verdict::Compromised {
                    detail: format!("actuator received {EVIL_VALUE:#x} undetected"),
                }
            } else {
                Verdict::Neutralized {
                    detail: "tampered run halted without the evil write".into(),
                }
            }
        }
        Ok(_) => Verdict::Neutralized {
            detail: "tampered run did not halt".into(),
        },
        Err(t) => Verdict::Crashed { trap: t },
    }
}

/// The same layout-aware attack against a SOFIA image. Two strategies:
///
/// * `plaintext_overwrite` — write the evil instruction word directly
///   (an attacker ignoring the encryption);
/// * otherwise — the **CTR-malleability** attack: XOR the known
///   plaintext difference into the ciphertext, which decrypts to exactly
///   the evil instruction. This defeats encryption-only ISR; only the
///   MAC stops it (set `enforce_si = false` to watch it succeed).
pub fn inject_sofia(keys: &KeySet, enforce_si: bool, plaintext_overwrite: bool) -> Verdict {
    inject_sofia_with(
        keys,
        &SofiaConfig {
            enforce_si,
            ..Default::default()
        },
        plaintext_overwrite,
    )
}

/// [`inject_sofia`] under an arbitrary machine configuration — the
/// security matrix uses this to prove ablations (CFI-only) and additions
/// (the verified-block cache) change nothing about the verdict.
pub fn inject_sofia_with(
    keys: &KeySet,
    config: &SofiaConfig,
    plaintext_overwrite: bool,
) -> Verdict {
    let module = asm::parse(&control_loop_victim(8)).expect("victim parses");
    let image = Transformer::new(keys.clone())
        .transform(&module)
        .expect("victim transforms");
    // The transformer is deterministic, so the attacker learns the target
    // word *index* by sealing their own copy of the (public) program
    // under throwaway keys and decrypting it.
    let probe_keys = KeySet::from_seed(0xEEEE);
    let probe = Transformer::new(probe_keys.clone())
        .transform(&module)
        .expect("probe transforms");
    let probe_plain = decrypt_interior_words(&probe, &probe_keys);
    let idx = find_safe_imm(&probe_plain).expect("probe contains the safe li");

    let mut m = SofiaMachine::with_config(&image, keys, config);
    if plaintext_overwrite {
        m.mem_mut().rom_mut()[idx] = Instruction::Addi {
            rt: Reg::T1,
            rs: Reg::ZERO,
            imm: EVIL_VALUE as i16,
        }
        .encode();
    } else {
        m.mem_mut().rom_mut()[idx] ^= evil_diff();
    }
    classify_sofia_run(m)
}

/// Decrypts the interior (sequentially chained) words of an image sealed
/// under **known** keys. Entry words use per-edge counters and come out
/// garbled, but instruction slots are always interior, which is all the
/// layout probe needs.
fn decrypt_interior_words(image: &SecureImage, keys: &KeySet) -> Vec<u32> {
    use sofia_crypto::{ctr, CounterBlock};
    let ks = keys.expand();
    let mut out = Vec::with_capacity(image.ctext.len());
    for (i, &c) in image.ctext.iter().enumerate() {
        let pc = image.text_base + 4 * i as u32;
        let prev = if i == 0 { 0 } else { pc - 4 };
        out.push(ctr::apply(
            &ks.ctr,
            CounterBlock::from_edge(image.nonce, prev, pc),
            c,
        ));
    }
    out
}

/// Runs a (possibly tampered) SOFIA machine and classifies the outcome by
/// observable effect.
pub(crate) fn classify_sofia_run(mut m: SofiaMachine) -> Verdict {
    match m.run(FUEL) {
        Ok(RunOutcome::ViolationStop(v)) => Verdict::Detected { violation: v },
        Ok(RunOutcome::ResetLoop { .. }) => Verdict::Detected {
            violation: *m.violations().last().expect("reset loop has violations"),
        },
        Ok(RunOutcome::Halted) | Ok(RunOutcome::OutOfFuel) => {
            if m.mem().mmio.actuator_writes.contains(&EVIL_VALUE) {
                Verdict::Compromised {
                    detail: format!("actuator received {EVIL_VALUE:#x} undetected"),
                }
            } else {
                Verdict::Neutralized {
                    detail: "no malicious effect observed".into(),
                }
            }
        }
        Err(t) => Verdict::Crashed { trap: t },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_is_compromised_by_injection() {
        assert!(inject_vanilla().is_compromised());
    }

    #[test]
    fn sofia_detects_plaintext_overwrite() {
        let keys = KeySet::from_seed(42);
        let v = inject_sofia(&keys, true, true);
        assert!(v.is_detected(), "{v}");
    }

    #[test]
    fn sofia_detects_ctr_malleability() {
        // The XOR attack decrypts to a perfectly valid evil instruction —
        // only the MAC catches it.
        let keys = KeySet::from_seed(42);
        let v = inject_sofia(&keys, true, false);
        assert!(v.is_detected(), "{v}");
    }

    #[test]
    fn cfi_only_machine_falls_to_ctr_malleability() {
        // With the SI check ablated, the malleability attack succeeds:
        // the paper's argument for combining CFI with SI (§II-A/§II-C).
        let keys = KeySet::from_seed(42);
        let v = inject_sofia(&keys, false, false);
        assert!(v.is_compromised(), "{v}");
    }

    #[test]
    fn malleability_needs_known_plaintext_difference() {
        // Flipping the same bits of a *different* word garbles it and the
        // MAC rejects the block.
        let keys = KeySet::from_seed(43);
        let module = asm::parse(&control_loop_victim(4)).unwrap();
        let image = Transformer::new(keys.clone()).transform(&module).unwrap();
        let mut m = SofiaMachine::new(&image, &keys);
        m.mem_mut().rom_mut()[5] ^= evil_diff();
        let v = classify_sofia_run(m);
        assert!(v.is_detected(), "{v}");
    }
}
