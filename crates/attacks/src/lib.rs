//! # sofia-attacks — the adversary harness
//!
//! Implements the paper's threat model (an attacker "in control of the
//! program memory", §I) as concrete, repeatable experiments, each run
//! against both the unprotected baseline and the SOFIA machine:
//!
//! * [`injection`] — overwrite/flip instruction words in the stored image
//!   (code injection), including the **CTR-malleability** attack that
//!   defeats a CFI-only machine but not SOFIA;
//! * [`relocation`] — move/splice ciphertext blocks (the ECB-ISR weakness
//!   cited in §I) and cross-version splicing (nonce separation);
//! * [`hijack`] — control-flow hijack via attacker-influenced indirect
//!   transfers (code reuse) and via direct PC fault injection;
//! * [`forgery`] — Monte-Carlo MAC forgery on truncated MACs, verifying
//!   the `2^{-n}` acceptance scaling behind §IV-A;
//! * [`migration`] — forged/stale resume points in restored job
//!   snapshots (the suspend/migrate deployment surface): caught by edge
//!   verification on the first resumed fetch;
//! * [`confidentiality`] — the copyright-protection claim: ciphertext
//!   images are high-entropy and disassemble to noise;
//! * [`xbackend`] — the same adversary against the alternative backends
//!   (`sofia-backends`), with a finer verdict scale that captures
//!   deferred detection (compromised-but-flagged vs silent);
//! * [`campaigns`] — the adversary as a *tenant*: multi-tenant probing,
//!   forgery-scaling and migration-tampering campaigns driven through
//!   the `sofia-fleet` service API, pricing §IV-A's attacker work per
//!   [`sofia_fleet::QuarantinePolicy`] at the service boundary.
//!
//! Verdicts are classified by *observable effect* (did the actuator
//! receive the attacker's value? was the run detected?), so experiments
//! stay meaningful whichever internal mechanism fires first.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaigns;
pub mod confidentiality;
pub mod forgery;
pub mod hijack;
pub mod injection;
pub mod migration;
pub mod relocation;
pub mod victims;
pub mod xbackend;

use std::fmt;

use sofia_core::Violation;
use sofia_cpu::Trap;

/// The outcome of one attack run, classified by observable effect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The attacker achieved the malicious effect without detection.
    Compromised {
        /// What the attacker obtained.
        detail: String,
    },
    /// SOFIA detected the attack and reset/stopped the core.
    Detected {
        /// The violation that fired.
        violation: Violation,
    },
    /// The attack achieved nothing observable (e.g. a dispatch-ladder
    /// CFI trap halted the program before any malicious effect).
    Neutralized {
        /// Why nothing happened.
        detail: String,
    },
    /// The machine trapped on garbage (undetected-but-crashed; possible
    /// only on unprotected or CFI-only configurations).
    Crashed {
        /// The trap observed.
        trap: Trap,
    },
}

impl Verdict {
    /// Whether the attack achieved its malicious effect.
    pub fn is_compromised(&self) -> bool {
        matches!(self, Verdict::Compromised { .. })
    }

    /// Whether SOFIA's hardware checks fired.
    pub fn is_detected(&self) -> bool {
        matches!(self, Verdict::Detected { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Compromised { detail } => write!(f, "COMPROMISED: {detail}"),
            Verdict::Detected { violation } => write!(f, "DETECTED: {violation}"),
            Verdict::Neutralized { detail } => write!(f, "NEUTRALIZED: {detail}"),
            Verdict::Crashed { trap } => write!(f, "CRASHED: {trap}"),
        }
    }
}

/// Fuel for attack runs.
pub(crate) const FUEL: u64 = 5_000_000;
