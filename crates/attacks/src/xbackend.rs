//! Cross-backend attack matrix: the same attacks run against SOFIA, the
//! sponge-CFP backend and the FIPAC backend, classified by a *finer*
//! verdict than [`crate::Verdict`] — the schemes differ precisely in
//! *when* they detect, so "compromised" splits into flagged-late versus
//! never-flagged.
//!
//! Three rows, each chosen to discriminate:
//!
//! * `word-tamper` — flip the safe→evil immediate in the stored image.
//!   SOFIA's MAC refuses the block before anything executes; the sponge
//!   decrypts the tampered word to the attacker's instruction (the chain
//!   is as malleable as CTR for the first word) but desynchronises
//!   immediately after, so the actuator store never decodes; FIPAC
//!   *executes* the tampered program — the evil value lands — and only
//!   the halt signature flags the run after the fact.
//! * `gadget-hijack` — force the fetch cursor to the dangerous gadget.
//!   SOFIA and the sponge land on ciphertext sealed for a different
//!   edge; FIPAC executes the (plaintext) gadget and flags at its exit.
//! * `check-elision` — fault the scheme's comparator, then tamper.
//!   SOFIA without its SI compare falls to CTR malleability; FIPAC
//!   without its signature compare completes silently; the sponge has
//!   **no comparator to fault** — detection is implicit in decode — and
//!   still catches the tamper.

use std::fmt;

use sofia_backends::{BackendMachine, BackendOutcome, FipacMachine, SpongeMachine};
use sofia_cpu::FetchUnit;
use sofia_crypto::{KeySet, Nonce};
use sofia_isa::asm;
use sofia_isa::{Instruction, Reg};
use sofia_transform::{install_fipac, seal_sponge};

use crate::victims::{control_loop_victim, rop_victim, EVIL_VALUE, SAFE_VALUE};
use crate::{hijack, injection, Verdict, FUEL};

/// The outcome of one attack against one backend, ordered roughly from
/// best (for the defender) to worst.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XVerdict {
    /// Detected before any malicious effect reached the actuator.
    Detected(String),
    /// The attack achieved nothing and nothing fired (crash, loop, or a
    /// clean halt without the malicious effect).
    Neutralized(String),
    /// The malicious effect landed, but a later check flagged the run —
    /// FIPAC's deferred-detection contract.
    CompromisedFlagged(String),
    /// The malicious effect landed and the run completed as if honest.
    CompromisedSilent(String),
}

impl XVerdict {
    /// Whether the scheme fired at all (before or after the effect).
    pub fn is_flagged(&self) -> bool {
        matches!(
            self,
            XVerdict::Detected(_) | XVerdict::CompromisedFlagged(_)
        )
    }

    /// Whether the attacker's value reached the actuator.
    pub fn is_compromised(&self) -> bool {
        matches!(
            self,
            XVerdict::CompromisedFlagged(_) | XVerdict::CompromisedSilent(_)
        )
    }

    /// Stable label for reports and the pinned JSON.
    pub fn label(&self) -> &'static str {
        match self {
            XVerdict::Detected(_) => "detected",
            XVerdict::Neutralized(_) => "neutralized",
            XVerdict::CompromisedFlagged(_) => "compromised-flagged",
            XVerdict::CompromisedSilent(_) => "compromised-silent",
        }
    }
}

impl fmt::Display for XVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XVerdict::Detected(d) => write!(f, "DETECTED: {d}"),
            XVerdict::Neutralized(d) => write!(f, "NEUTRALIZED: {d}"),
            XVerdict::CompromisedFlagged(d) => write!(f, "COMPROMISED+FLAGGED: {d}"),
            XVerdict::CompromisedSilent(d) => write!(f, "COMPROMISED SILENTLY: {d}"),
        }
    }
}

/// One attack row across the three backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XRow {
    /// Attack label.
    pub attack: &'static str,
    /// Verdict against the SOFIA machine.
    pub sofia: XVerdict,
    /// Verdict against the sponge-CFP machine.
    pub sponge: XVerdict,
    /// Verdict against the FIPAC machine.
    pub fipac: XVerdict,
}

/// Classifies a finished backend run by observable effect.
fn classify<F>(mut m: BackendMachine<F>) -> XVerdict
where
    F: FetchUnit,
    F::Violation: fmt::Display,
{
    let outcome = m.run(FUEL);
    let evil = m.mem().mmio.actuator_writes.contains(&EVIL_VALUE);
    match outcome {
        Ok(BackendOutcome::ViolationStop(v)) if evil => XVerdict::CompromisedFlagged(v.to_string()),
        Ok(BackendOutcome::ViolationStop(v)) => XVerdict::Detected(v.to_string()),
        Ok(BackendOutcome::ResetLoop { resets }) => {
            XVerdict::Detected(format!("persistent violation, {resets} resets"))
        }
        Ok(BackendOutcome::Halted) if evil => {
            XVerdict::CompromisedSilent(format!("actuator received {EVIL_VALUE:#x}"))
        }
        Ok(BackendOutcome::Halted) => XVerdict::Neutralized("halted without the evil write".into()),
        Ok(BackendOutcome::OutOfFuel) => XVerdict::Neutralized("diverged into a loop".into()),
        Err(t) if evil => XVerdict::CompromisedFlagged(format!("crashed after the write: {t}")),
        Err(t) => XVerdict::Neutralized(format!("crashed: {t}")),
    }
}

/// Maps the coarse SOFIA verdict onto the finer scale. SOFIA detection is
/// pre-execution (the block never leaves the verify unit), so a plain
/// `Compromised` can only mean *silent* compromise.
fn from_sofia(v: Verdict) -> XVerdict {
    match v {
        Verdict::Detected { violation } => XVerdict::Detected(violation.to_string()),
        Verdict::Compromised { detail } => XVerdict::CompromisedSilent(detail),
        Verdict::Neutralized { detail } => XVerdict::Neutralized(detail),
        Verdict::Crashed { trap } => XVerdict::Neutralized(format!("crashed: {trap}")),
    }
}

/// Word index of the `li t1, SAFE_VALUE` instruction in the plaintext
/// layout (the attacker knows the firmware layout).
fn safe_imm_index(words: &[u32]) -> usize {
    words
        .iter()
        .position(|&w| {
            Instruction::decode(w)
                == Ok(Instruction::Addi {
                    rt: Reg::T1,
                    rs: Reg::ZERO,
                    imm: SAFE_VALUE as i16,
                })
        })
        .expect("victim contains the safe li")
}

fn evil_diff() -> u32 {
    SAFE_VALUE ^ EVIL_VALUE
}

fn sponge_victim(keys: &KeySet, src: &str) -> SpongeMachine {
    let module = asm::parse(src).expect("victim parses");
    let image = seal_sponge(&module, keys, Nonce::new(1)).expect("victim seals");
    SpongeMachine::new(&image, keys)
}

fn fipac_victim(keys: &KeySet, src: &str) -> FipacMachine {
    let module = asm::parse(src).expect("victim parses");
    let image = install_fipac(&module, keys, Nonce::new(1)).expect("victim installs");
    FipacMachine::new(&image, keys)
}

/// The `word-tamper` row: XOR the safe→evil immediate difference into
/// the stored image at the known layout position.
pub fn word_tamper(keys: &KeySet) -> XRow {
    let src = control_loop_victim(8);
    let idx = safe_imm_index(&asm::assemble(&src).expect("victim assembles").words);

    let mut sponge = sponge_victim(keys, &src);
    sponge.mem_mut().rom_mut()[idx] ^= evil_diff();

    let mut fipac = fipac_victim(keys, &src);
    fipac.mem_mut().rom_mut()[idx] ^= evil_diff();

    XRow {
        attack: "word-tamper",
        sofia: from_sofia(injection::inject_sofia(keys, true, false)),
        sponge: classify(sponge),
        fipac: classify(fipac),
    }
}

/// The `gadget-hijack` row: force the fetch cursor straight to the
/// dangerous gadget's address.
pub fn gadget_hijack(keys: &KeySet) -> XRow {
    let src = rop_victim();
    let assembly = asm::assemble(&src).expect("victim assembles");
    let gadget = assembly.symbols["gadget"];

    let mut sponge = sponge_victim(keys, &src);
    sponge.fetch_mut().hijack(gadget);

    let mut fipac = fipac_victim(keys, &src);
    fipac.fetch_mut().hijack(gadget);

    XRow {
        attack: "gadget-hijack",
        // SOFIA's layout is block-structured, so the equivalent fault
        // lands the cursor in a mid-program block; same adversary power.
        sofia: from_sofia(hijack::fault_inject_sofia(keys, 3)),
        sponge: classify(sponge),
        fipac: classify(fipac),
    }
}

/// The `check-elision` row: fault the scheme's comparator, then run the
/// `word-tamper` payload. The sponge has no comparator — its cell is the
/// tamper alone.
pub fn check_elision(keys: &KeySet) -> XRow {
    let src = control_loop_victim(8);
    let idx = safe_imm_index(&asm::assemble(&src).expect("victim assembles").words);

    let mut sponge = sponge_victim(keys, &src);
    sponge.mem_mut().rom_mut()[idx] ^= evil_diff();

    let mut fipac = fipac_victim(keys, &src);
    fipac.mem_mut().rom_mut()[idx] ^= evil_diff();
    fipac.fetch_mut().elide_checks();

    XRow {
        attack: "check-elision",
        // SOFIA's comparator is the SI unit's MAC compare; eliding it
        // leaves CFI-only decryption, which CTR malleability defeats.
        sofia: from_sofia(injection::inject_sofia(keys, false, false)),
        sponge: classify(sponge),
        fipac: classify(fipac),
    }
}

/// The full cross-backend matrix.
pub fn matrix(keys: &KeySet) -> Vec<XRow> {
    vec![word_tamper(keys), gadget_hijack(keys), check_elision(keys)]
}
