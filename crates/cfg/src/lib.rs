//! # sofia-cfg — instruction-level control-flow analysis
//!
//! SOFIA encrypts every instruction under the control-flow **edge** that
//! reaches it, so its installer needs a *precise*, instruction-granular
//! CFG of the whole program (paper §II-A). This crate builds that graph
//! over a symbolic [`Module`]:
//!
//! * every instruction is a node;
//! * edges carry an [`EdgeKind`]: fall-through, taken branch, jump, call,
//!   return, or declared indirect transfer;
//! * return edges are resolved by attributing each `jr ra` to its
//!   enclosing (contiguous) function and connecting it to every return
//!   point of that function's call sites;
//! * `jalr`/computed `jr` must declare their possible targets with the
//!   assembler's `.indirect` directive — exactly the paper's requirement
//!   that "control flow can be modeled accurately"; programs whose control
//!   flow cannot be enumerated (the paper names polymorphism) are rejected.
//!
//! # Examples
//!
//! ```
//! use sofia_cfg::{Cfg, EdgeKind};
//! use sofia_isa::asm;
//!
//! let module = asm::parse(
//!     "main: jal f
//!           halt
//!      f:   ret",
//! )?;
//! let cfg = Cfg::build(&module)?;
//! // the call edge main[0] -> f[2]
//! assert!(cfg.succs(0).iter().any(|e| e.to == 2 && e.kind == EdgeKind::Call));
//! // the return edge f[2] -> main[1]
//! assert!(cfg.succs(2).iter().any(|e| e.to == 1 && e.kind == EdgeKind::Return));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

//!
//! [`Module`]: sofia_isa::asm::Module

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use sofia_isa::asm::{Module, Reloc};
use sofia_isa::{Instruction, Reg};

/// Why a control-flow edge exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Sequential execution into the next instruction.
    FallThrough,
    /// A conditional branch, taken.
    Branch,
    /// An unconditional direct jump (`j`).
    Jump,
    /// A call (`jal`, or `jalr` with declared targets).
    Call,
    /// A function return (`jr ra`) back to a return point.
    Return,
    /// A declared indirect transfer (`.indirect` on `jr`).
    Indirect,
}

/// A directed control-flow edge between instruction indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Index of the transferring (or preceding) instruction.
    pub from: usize,
    /// Index of the destination instruction.
    pub to: usize,
    /// Why control flows along this edge.
    pub kind: EdgeKind,
}

/// Errors found while building the CFG — each one is a program the SOFIA
/// installer must reject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgError {
    /// A `jalr` (or non-return `jr`) without a `.indirect` declaration:
    /// its targets cannot be enumerated statically.
    UnresolvedIndirect {
        /// Instruction index of the offending transfer.
        index: usize,
        /// Source line.
        line: usize,
    },
    /// An `.indirect` target label that does not exist.
    UndefinedTarget {
        /// The missing label.
        label: String,
        /// Source line of the referencing instruction.
        line: usize,
    },
    /// The last instruction can fall off the end of the text section.
    FallsOffEnd {
        /// Index of the instruction that falls through.
        index: usize,
    },
    /// A relocation references a label that is not a text label (e.g.
    /// branching to data).
    BranchToData {
        /// The label.
        label: String,
        /// Source line.
        line: usize,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UnresolvedIndirect { index, line } => write!(
                f,
                "indirect transfer at instruction {index} (line {line}) has no .indirect targets"
            ),
            CfgError::UndefinedTarget { label, line } => {
                write!(f, "undefined .indirect target `{label}` (line {line})")
            }
            CfgError::FallsOffEnd { index } => {
                write!(f, "instruction {index} can fall off the end of .text")
            }
            CfgError::BranchToData { label, line } => {
                write!(
                    f,
                    "control transfer to non-text label `{label}` (line {line})"
                )
            }
        }
    }
}

impl Error for CfgError {}

/// The instruction-level control-flow graph of a module.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<Edge>>,
    preds: Vec<Vec<Edge>>,
    entry: usize,
    function_starts: Vec<usize>,
    label_index: BTreeMap<String, usize>,
}

impl Cfg {
    /// Builds the CFG of `module`.
    ///
    /// # Errors
    ///
    /// See [`CfgError`]. A successful build guarantees: every transfer
    /// target is a known text label, every indirect transfer is declared,
    /// and no instruction falls off the end of the section.
    pub fn build(module: &Module) -> Result<Cfg, CfgError> {
        let n = module.text.len();
        let label_index = label_map(module);
        let mut succs: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<Edge>> = vec![Vec::new(); n];

        // Resolve the target label of a control-transfer reloc.
        let resolve = |label: &str, line: usize| -> Result<usize, CfgError> {
            label_index
                .get(label)
                .copied()
                .ok_or_else(|| CfgError::BranchToData {
                    label: label.to_string(),
                    line,
                })
        };

        // --- function starts: entry + every call / indirect target ---
        let mut starts: BTreeSet<usize> = BTreeSet::new();
        starts.insert(0);
        if let Some(entry_label) = &module.entry {
            if let Some(&i) = label_index.get(entry_label) {
                starts.insert(i);
            }
        }
        for (i, item) in module.text.iter().enumerate() {
            let is_call = item.inst.is_call();
            if is_call {
                match &item.reloc {
                    Some(Reloc::Jump(label)) => {
                        starts.insert(resolve(label, item.line)?);
                    }
                    _ => {
                        for t in &item.indirect_targets {
                            starts.insert(resolve(t, item.line)?);
                        }
                        if item.indirect_targets.is_empty() {
                            return Err(CfgError::UnresolvedIndirect {
                                index: i,
                                line: item.line,
                            });
                        }
                    }
                }
            }
        }
        let function_starts: Vec<usize> = starts.iter().copied().collect();
        let function_of = |i: usize| -> usize {
            match function_starts.binary_search(&i) {
                Ok(pos) => function_starts[pos],
                Err(pos) => function_starts[pos - 1],
            }
        };

        // --- return instructions per function ---
        let mut returns_by_fn: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, item) in module.text.iter().enumerate() {
            if is_return(&item.inst) && item.indirect_targets.is_empty() {
                returns_by_fn.entry(function_of(i)).or_default().push(i);
            }
        }

        let mut push = |edge: Edge| {
            succs[edge.from].push(edge);
            preds[edge.to].push(edge);
        };

        // --- edges ---
        for (i, item) in module.text.iter().enumerate() {
            let inst = &item.inst;
            // Fall-through.
            if inst.falls_through() {
                if i + 1 >= n {
                    return Err(CfgError::FallsOffEnd { index: i });
                }
                push(Edge {
                    from: i,
                    to: i + 1,
                    kind: EdgeKind::FallThrough,
                });
            }
            if inst.is_branch() {
                let label = match &item.reloc {
                    Some(Reloc::Branch(l)) => l,
                    _ => unreachable!("branch without branch reloc"),
                };
                push(Edge {
                    from: i,
                    to: resolve(label, item.line)?,
                    kind: EdgeKind::Branch,
                });
            } else if let Instruction::J { .. } = inst {
                let label = match &item.reloc {
                    Some(Reloc::Jump(l)) => l,
                    _ => unreachable!("j without jump reloc"),
                };
                push(Edge {
                    from: i,
                    to: resolve(label, item.line)?,
                    kind: EdgeKind::Jump,
                });
            } else if let Instruction::Jal { .. } = inst {
                let label = match &item.reloc {
                    Some(Reloc::Jump(l)) => l,
                    _ => unreachable!("jal without jump reloc"),
                };
                let callee = resolve(label, item.line)?;
                push(Edge {
                    from: i,
                    to: callee,
                    kind: EdgeKind::Call,
                });
                add_return_edges(i, callee, n, &returns_by_fn, &mut push)?;
            } else if let Instruction::Jalr { .. } = inst {
                if item.indirect_targets.is_empty() {
                    return Err(CfgError::UnresolvedIndirect {
                        index: i,
                        line: item.line,
                    });
                }
                for t in &item.indirect_targets {
                    let callee = resolve(t, item.line)?;
                    push(Edge {
                        from: i,
                        to: callee,
                        kind: EdgeKind::Call,
                    });
                    add_return_edges(i, callee, n, &returns_by_fn, &mut push)?;
                }
            } else if let Instruction::Jr { .. } = inst {
                if !item.indirect_targets.is_empty() {
                    // A declared computed jump (e.g. a switch table).
                    for t in &item.indirect_targets {
                        push(Edge {
                            from: i,
                            to: resolve(t, item.line)?,
                            kind: EdgeKind::Indirect,
                        });
                    }
                } else if !is_return(inst) {
                    return Err(CfgError::UnresolvedIndirect {
                        index: i,
                        line: item.line,
                    });
                }
                // `jr ra` return edges are added at each call site.
            }
        }

        let entry = module
            .entry
            .as_ref()
            .and_then(|l| label_index.get(l).copied())
            .or_else(|| label_index.get("main").copied())
            .unwrap_or(0);

        Ok(Cfg {
            succs,
            preds,
            entry,
            function_starts,
            label_index,
        })
    }

    /// Number of instructions (nodes).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the module had no instructions.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The entry instruction index.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Outgoing edges of instruction `i`.
    pub fn succs(&self, i: usize) -> &[Edge] {
        &self.succs[i]
    }

    /// Incoming edges of instruction `i`.
    pub fn preds(&self, i: usize) -> &[Edge] {
        &self.preds[i]
    }

    /// Indices that start a function (entry and every call target).
    pub fn function_starts(&self) -> &[usize] {
        &self.function_starts
    }

    /// The function (start index) containing instruction `i`.
    pub fn function_of(&self, i: usize) -> usize {
        match self.function_starts.binary_search(&i) {
            Ok(pos) => self.function_starts[pos],
            Err(pos) => self.function_starts[pos - 1],
        }
    }

    /// Resolved instruction index of a text label.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.label_index.get(name).copied()
    }

    /// Instructions reachable from the entry along CFG edges.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if self.is_empty() {
            return seen;
        }
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(i) = stack.pop() {
            for e in &self.succs[i] {
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Exports the graph in Graphviz DOT format (for documentation and
    /// debugging; Fig. 2 of the paper is such a graph).
    pub fn to_dot(&self, module: &Module) -> String {
        let mut out = String::from("digraph cfg {\n  node [shape=box, fontname=monospace];\n");
        for (i, item) in module.text.iter().enumerate() {
            let labels = if item.labels.is_empty() {
                String::new()
            } else {
                format!("{}: ", item.labels.join(", "))
            };
            out.push_str(&format!("  n{i} [label=\"{i}: {labels}{}\"];\n", item.inst));
        }
        for edges in &self.succs {
            for e in edges {
                out.push_str(&format!(
                    "  n{} -> n{} [label=\"{:?}\"];\n",
                    e.from, e.to, e.kind
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Maps every text label to its instruction index.
pub fn label_map(module: &Module) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for (i, item) in module.text.iter().enumerate() {
        for l in &item.labels {
            map.insert(l.clone(), i);
        }
    }
    map
}

/// Whether an instruction is a conventional return (`jr ra`).
pub fn is_return(inst: &Instruction) -> bool {
    matches!(inst, Instruction::Jr { rs } if *rs == Reg::RA)
}

fn add_return_edges(
    call_site: usize,
    callee: usize,
    n: usize,
    returns_by_fn: &BTreeMap<usize, Vec<usize>>,
    push: &mut impl FnMut(Edge),
) -> Result<(), CfgError> {
    if let Some(rets) = returns_by_fn.get(&callee) {
        if call_site + 1 >= n {
            return Err(CfgError::FallsOffEnd { index: call_site });
        }
        for &r in rets {
            push(Edge {
                from: r,
                to: call_site + 1,
                kind: EdgeKind::Return,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofia_isa::asm;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&asm::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_chain() {
        let c = cfg_of("main: nop\nnop\nhalt");
        assert_eq!(
            c.succs(0),
            &[Edge {
                from: 0,
                to: 1,
                kind: EdgeKind::FallThrough
            }]
        );
        assert_eq!(c.succs(2), &[] as &[Edge]);
        assert_eq!(c.preds(1).len(), 1);
    }

    #[test]
    fn branch_has_two_successors() {
        let c = cfg_of(
            "main: beqz t0, skip
                   nop
             skip: halt",
        );
        let kinds: Vec<EdgeKind> = c.succs(0).iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::FallThrough));
        assert!(kinds.contains(&EdgeKind::Branch));
        assert_eq!(c.preds(2).len(), 2); // fall-through from 1, branch from 0
    }

    #[test]
    fn call_and_return_edges() {
        let c = cfg_of(
            "main: jal f
                   halt
             f:    nop
                   ret",
        );
        assert!(c.succs(0).contains(&Edge {
            from: 0,
            to: 2,
            kind: EdgeKind::Call
        }));
        assert!(c.succs(3).contains(&Edge {
            from: 3,
            to: 1,
            kind: EdgeKind::Return
        }));
        // jal does NOT fall through directly.
        assert!(!c.succs(0).iter().any(|e| e.kind == EdgeKind::FallThrough));
    }

    #[test]
    fn two_callers_two_return_points() {
        let c = cfg_of(
            "main: jal f
                   jal f
                   halt
             f:    ret",
        );
        // f's entry (index 3) has two call preds.
        let call_preds: Vec<_> = c
            .preds(3)
            .iter()
            .filter(|e| e.kind == EdgeKind::Call)
            .collect();
        assert_eq!(call_preds.len(), 2);
        // the single `ret` returns to both return points.
        let ret_succs: Vec<_> = c
            .succs(3)
            .iter()
            .filter(|e| e.kind == EdgeKind::Return)
            .collect();
        assert_eq!(ret_succs.len(), 2);
        assert!(ret_succs.iter().any(|e| e.to == 1));
        assert!(ret_succs.iter().any(|e| e.to == 2));
    }

    #[test]
    fn indirect_call_edges_from_declaration() {
        let c = cfg_of(
            "main: la t0, f
                   .indirect f, g
                   jalr t0
                   halt
             f:    ret
             g:    ret",
        );
        let jalr = 2; // la expands to two instructions
        let callees: Vec<usize> = c
            .succs(jalr)
            .iter()
            .filter(|e| e.kind == EdgeKind::Call)
            .map(|e| e.to)
            .collect();
        assert_eq!(callees.len(), 2);
        // both callees return to the instruction after the jalr
        assert!(
            c.preds(3)
                .iter()
                .filter(|e| e.kind == EdgeKind::Return)
                .count()
                == 2
        );
    }

    #[test]
    fn undeclared_jalr_rejected() {
        let m = asm::parse("main: jalr t0\nhalt").unwrap();
        assert!(matches!(
            Cfg::build(&m),
            Err(CfgError::UnresolvedIndirect { .. })
        ));
    }

    #[test]
    fn falls_off_end_rejected() {
        let m = asm::parse("main: nop\nnop").unwrap();
        assert!(matches!(
            Cfg::build(&m),
            Err(CfgError::FallsOffEnd { index: 1 })
        ));
    }

    #[test]
    fn branch_to_data_rejected() {
        let m = asm::parse(".data\nbuf: .word 0\n.text\nmain: j buf\nhalt").unwrap();
        assert!(matches!(Cfg::build(&m), Err(CfgError::BranchToData { .. })));
    }

    #[test]
    fn function_attribution() {
        let c = cfg_of(
            "main: jal f
                   halt
             f:    nop
                   ret
             g:    ret",
        );
        assert_eq!(c.function_starts(), &[0, 2]); // g is never called
        assert_eq!(c.function_of(3), 2);
        assert_eq!(c.function_of(4), 2); // g folds into f's extent (uncalled)
    }

    #[test]
    fn reachability() {
        let c = cfg_of(
            "main: j end
             dead: nop
             end:  halt",
        );
        let r = c.reachable();
        assert!(r[0] && r[2]);
        assert!(!r[1]);
    }

    #[test]
    fn declared_jr_switch() {
        let c = cfg_of(
            "main: la t0, case0
                   .indirect case0, case1
                   jr t0
             case0: halt
             case1: halt",
        );
        let jr = 2;
        let kinds: Vec<_> = c.succs(jr).iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EdgeKind::Indirect, EdgeKind::Indirect]);
    }

    #[test]
    fn entry_respects_global() {
        let c = Cfg::build(&asm::parse(".global start\nboot: nop\nstart: halt").unwrap()).unwrap();
        assert_eq!(c.entry(), 1);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let m = asm::parse("main: beqz t0, end\nnop\nend: halt").unwrap();
        let c = Cfg::build(&m).unwrap();
        let dot = c.to_dot(&m);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0 -> n2"));
        assert!(dot.contains("Branch"));
    }

    #[test]
    fn fig2_shape() {
        // The paper's Fig. 2: node 1 -> 2 (fall-through), 2 -> 5 (jump);
        // the invalid edge 1 -> 5 must NOT be in the graph.
        let c = cfg_of(
            "main: mv t0, t1
                   j l5
                   nop
                   nop
             l5:   mv t1, t2
                   halt",
        );
        assert!(c.succs(0).contains(&Edge {
            from: 0,
            to: 1,
            kind: EdgeKind::FallThrough
        }));
        assert!(c.succs(1).contains(&Edge {
            from: 1,
            to: 4,
            kind: EdgeKind::Jump
        }));
        assert!(!c.succs(0).iter().any(|e| e.to == 4));
        let r = c.reachable();
        assert!(!r[2] && !r[3]);
    }
}
