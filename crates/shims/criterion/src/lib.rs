//! Offline, API-compatible stand-in for the `criterion` crate.
//!
//! Covers the surface this workspace's benches use (see
//! `crates/shims/README.md`). Measurement is a calibrated warm-up to size
//! the iteration count, then several timed windows; the median window is
//! reported as ns/iter together with optional throughput. Mirroring real
//! criterion's behaviour, a bench binary invoked without `--bench` (as
//! `cargo test` does) runs every benchmark body exactly once as a smoke
//! test instead of measuring.

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque sink preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units a benchmark processes per iteration, for derived throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// A benchmark identifier, printable as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from a parameter alone (the group name provides context).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Invoked by `cargo bench` (`--bench` present): measure.
    Measure,
    /// Invoked by `cargo test`: run each body once.
    Smoke,
}

/// The benchmark driver.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    benches_run: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure,
            filter: None,
            benches_run: 0,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (as `criterion_main!`
    /// does). `--bench` selects measurement mode; the first free argument
    /// is a substring filter; other flags are accepted and ignored —
    /// including the value of a value-taking criterion flag like
    /// `--save-baseline main`, which must not be mistaken for the filter.
    pub fn from_args() -> Criterion {
        // Real-criterion flags that consume the following argument.
        const VALUE_FLAGS: &[&str] = &[
            "--save-baseline",
            "--baseline",
            "--baseline-lenient",
            "--color",
            "--colour",
            "--sample-size",
            "--warm-up-time",
            "--measurement-time",
            "--nresamples",
            "--noise-threshold",
            "--confidence-level",
            "--significance-level",
            "--profile-time",
            "--load-baseline",
            "--output-format",
            "--plotting-backend",
            "--format",
            "--logfile",
        ];
        let mut mode = Mode::Smoke;
        let mut filter = None;
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            if skip_value {
                skip_value = false;
                continue;
            }
            match arg.as_str() {
                "--bench" => mode = Mode::Measure,
                a if VALUE_FLAGS.contains(&a) => skip_value = true,
                a if a.starts_with('-') => {}
                a if filter.is_none() => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion {
            mode,
            filter,
            benches_run: 0,
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks one function.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        self.run_one(&id.to_string(), None, f);
        self
    }

    /// Prints the closing line (`criterion_main!` calls this).
    pub fn final_summary(&self) {
        if self.mode == Mode::Measure {
            println!("\n{} benchmark(s) measured", self.benches_run);
        }
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            sample: None,
        };
        f(&mut bencher);
        self.benches_run += 1;
        if self.mode == Mode::Smoke {
            return;
        }
        match bencher.sample {
            Some(ns_per_iter) => {
                let thrpt = throughput.map(|t| throughput_line(t, ns_per_iter));
                println!(
                    "{id:<40} time: {:>12} {}",
                    format_ns(ns_per_iter),
                    thrpt.unwrap_or_default()
                );
            }
            None => println!("{id:<40} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// Benchmarks one function parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs the timed routine.
pub struct Bencher {
    mode: Mode,
    sample: Option<f64>,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iter for the report. In
    /// smoke mode (under `cargo test`) the routine runs exactly once.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 5 ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 40 {
                let per_iter = elapsed.as_nanos() as f64 / batch as f64;
                // Size batches to ~20 ms and take the median of 5.
                let target = Duration::from_millis(20).as_nanos() as f64;
                batch = ((target / per_iter.max(0.1)) as u64).max(1);
                break;
            }
            batch = batch.saturating_mul(2);
        }
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.sample = Some(samples[samples.len() / 2]);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn throughput_line(t: Throughput, ns_per_iter: f64) -> String {
    let per_second = 1_000_000_000.0 / ns_per_iter;
    match t {
        Throughput::Bytes(n) => {
            let bps = per_second * n as f64;
            format!("thrpt: {:.2} MiB/s", bps / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => {
            let eps = per_second * n as f64;
            format!("thrpt: {:.3} Melem/s", eps / 1_000_000.0)
        }
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}
