//! Deterministic case generation and failure plumbing.

use std::fmt;

/// Cases generated per `proptest!` test.
pub const CASES: u32 = 64;

/// `prop_assume!` rejections tolerated per case before the test fails
/// (real proptest errors out similarly instead of looping forever on an
/// unsatisfiable assumption).
pub const MAX_REJECTS_PER_CASE: u32 = 1024;

/// Runner configuration — only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

/// A SplitMix64 generator — deterministic per test so failures reproduce.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test's name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a generated case did not pass: an assertion failure or a
/// `prop_assume!` rejection (the latter is skipped, not reported).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError {
            message,
            rejection: false,
        }
    }

    /// A `prop_assume!` precondition rejection.
    pub fn reject() -> TestCaseError {
        TestCaseError {
            message: String::new(),
            rejection: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}
