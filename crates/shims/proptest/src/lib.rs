//! Offline, API-compatible stand-in for the `proptest` crate.
//!
//! Covers exactly the surface this workspace uses (see
//! `crates/shims/README.md`): deterministic random-case generation with a
//! per-test seed, no shrinking. The point is that property tests written
//! against real proptest compile and run unchanged in a container without
//! registry access.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` body, failing the case with a
/// message instead of panicking (so the runner can report the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right` (both: `{:?}`)",
            left
        );
    }};
}

/// Discards the current case (it is skipped, not counted as a failure)
/// when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Picks one of several (possibly differently-typed) strategies with a
/// common value type, uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over
/// [`test_runner::CASES`] generated inputs (or the count given by an
/// optional leading `#![proptest_config(...)]`). A `prop_assume!`
/// rejection regenerates the case (bounded by
/// [`test_runner::MAX_REJECTS_PER_CASE`]) rather than consuming the
/// case budget, matching real proptest's behaviour.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(
            { $crate::test_runner::ProptestConfig::from($config).cases },
            $($rest)*
        );
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::CASES, $($rest)*);
    };
}

/// Shared expansion behind [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cases:expr,
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let cases: u32 = $cases;
                for case in 0..cases {
                    let mut rejects = 0u32;
                    loop {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        let outcome = (move || -> ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                        match outcome {
                            ::std::result::Result::Ok(()) => break,
                            ::std::result::Result::Err(e) if e.is_rejection() => {
                                rejects += 1;
                                assert!(
                                    rejects <= $crate::test_runner::MAX_REJECTS_PER_CASE,
                                    "proptest case {case} of {}: {} prop_assume! rejections \
                                     without an accepted input",
                                    stringify!($name),
                                    rejects,
                                );
                            }
                            ::std::result::Result::Err(e) => {
                                panic!("proptest case {case} of {}: {}", stringify!($name), e)
                            }
                        }
                    }
                }
            }
        )*
    };
}
