//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specifications accepted by [`vec`]: a fixed `usize` or a
/// `Range<usize>`.
pub trait IntoLenRange {
    /// Lower bound (inclusive) and upper bound (exclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoLenRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max_exclusive: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.max_exclusive - self.min;
        let len = if span <= 1 {
            self.min
        } else {
            self.min + rng.below(span)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors whose elements come from `element` and whose
/// length satisfies `len`.
pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
    let (min, max_exclusive) = len.bounds();
    assert!(min < max_exclusive, "empty length range");
    VecStrategy {
        element,
        min,
        max_exclusive,
    }
}
