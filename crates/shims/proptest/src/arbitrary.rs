//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Generates one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
