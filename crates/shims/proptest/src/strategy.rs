//! The `Strategy` trait and the combinators this workspace uses.

use std::ops::{Range, RangeFrom, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type. The erased strategy is `Send + Sync`
    /// (real proptest's `BoxedStrategy` composes into multi-threaded
    /// property tests, so the shim's must too — hence `Arc`, not `Rc`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T + Send + Sync>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

// Compile-time guarantee: erased strategies cross thread boundaries in
// multi-threaded property tests (e.g. the fleet determinism suite).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<BoxedStrategy<u32>>();
};

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Picks one of several strategies uniformly per case.
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: impl IntoIterator<Item = S>) -> Union<S> {
        let arms: Vec<S> = arms.into_iter().collect();
        assert!(!arms.is_empty(), "Union of zero strategies");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.below(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                self.start().wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128) - (self.start as u128) + 1;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty : $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}

signed_range_strategies!(i8: u8, i16: u16, i32: u32, i64: u64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
