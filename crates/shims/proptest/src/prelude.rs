//! The usual `use proptest::prelude::*` surface.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
